// The two comparison protocols of the paper's §7: replicated two-phase
// commit and the COReL-style engine.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/corel.h"
#include "baselines/twopc.h"
#include "db/database.h"

namespace tordb::baselines {
namespace {

using db::Command;

template <typename Replica, typename Params>
struct BaselineCluster {
  BaselineCluster(int n, Params params, std::uint64_t seed = 1) : sim(seed), net(sim) {
    std::vector<NodeId> all;
    for (NodeId i = 0; i < n; ++i) all.push_back(i);
    for (NodeId i = 0; i < n; ++i) net.add_node(i);
    for (NodeId i = 0; i < n; ++i) {
      replicas.push_back(std::make_unique<Replica>(net, i, all, params));
    }
  }
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<Replica>> replicas;
};

using TwoPcCluster = BaselineCluster<TwoPcReplica, TwoPcParams>;
using CorelCluster = BaselineCluster<CorelReplica, CorelParams>;

TEST(TwoPc, CommitsAndApplies) {
  TwoPcCluster c(4, {});
  bool ok = false;
  c.replicas[0]->submit(Command::put("k", "v"), [&](bool committed) { ok = committed; });
  c.sim.run_for(millis(200));
  EXPECT_TRUE(ok);
  for (auto& r : c.replicas) EXPECT_EQ(r->database().get("k"), "v");
}

TEST(TwoPc, TwoForcedWritesOnCriticalPath) {
  TwoPcCluster c(3, {});
  SimTime done_at = -1;
  c.replicas[0]->submit(Command::put("k", "v"), [&](bool) { done_at = c.sim.now(); });
  c.sim.run_for(millis(200));
  const SimDuration force = StorageParams{}.force_latency;
  // Prepare force and commit force are sequential: latency >= 2 forces.
  EXPECT_GE(done_at, 2 * force);
  EXPECT_LT(done_at, 3 * force);
}

TEST(TwoPc, ConcurrentTransactionsAllCommit) {
  TwoPcCluster c(5, {});
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    for (auto& r : c.replicas) {
      r->submit(Command::add("n", 1), [&](bool ok) { committed += ok ? 1 : 0; });
    }
  }
  c.sim.run_for(seconds(2));
  EXPECT_EQ(committed, 50);
  EXPECT_EQ(c.replicas[0]->stats().committed, 50u);
}

TEST(TwoPc, AbortsWhenPartitioned) {
  // The paper's availability argument: 2PC requires full connectivity.
  TwoPcCluster c(4, {});
  c.net.set_components({{0, 1, 2}, {3}});
  bool decided = false, ok = true;
  c.replicas[0]->submit(Command::put("k", "v"), [&](bool committed) {
    decided = true;
    ok = committed;
  });
  c.sim.run_for(seconds(1));
  EXPECT_TRUE(decided);
  EXPECT_FALSE(ok);  // timed out and aborted
  EXPECT_EQ(c.replicas[0]->database().get("k"), "");
}

TEST(Corel, CommitsAndApplies) {
  CorelCluster c(4, {});
  c.sim.run_for(millis(500));  // views settle
  bool ok = false;
  c.replicas[1]->submit(Command::put("k", "v"), [&](bool committed) { ok = committed; });
  c.sim.run_for(millis(200));
  EXPECT_TRUE(ok);
  for (auto& r : c.replicas) EXPECT_EQ(r->database().get("k"), "v");
}

TEST(Corel, OneForcedWriteOnCriticalPath) {
  CorelCluster c(3, {});
  c.sim.run_for(millis(500));
  const SimTime start = c.sim.now();
  SimTime done_at = -1;
  c.replicas[0]->submit(Command::put("k", "v"), [&](bool) { done_at = c.sim.now(); });
  c.sim.run_for(millis(200));
  const SimDuration force = StorageParams{}.force_latency;
  const SimDuration latency = done_at - start;
  EXPECT_GE(latency, force);      // one force (parallel at all replicas)
  EXPECT_LT(latency, 2 * force);  // but not two sequential ones
}

TEST(Corel, EveryReplicaAcksEveryAction) {
  CorelCluster c(4, {});
  c.sim.run_for(millis(500));
  for (int i = 0; i < 5; ++i) {
    c.replicas[0]->submit(Command::add("n", 1), nullptr);
  }
  c.sim.run_for(seconds(1));
  for (auto& r : c.replicas) {
    EXPECT_EQ(r->stats().acks_sent, 5u) << "replica " << r->id();
    EXPECT_EQ(r->database().get("n"), "5");
  }
}

TEST(Corel, TotalOrderAcrossSubmitters) {
  CorelCluster c(5, {});
  c.sim.run_for(millis(500));
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    for (auto& r : c.replicas) {
      r->submit(Command::append("log", std::to_string(r->id())),
                [&](bool ok) { committed += ok ? 1 : 0; });
    }
    c.sim.run_for(millis(5));
  }
  c.sim.run_for(seconds(1));
  EXPECT_EQ(committed, 50);
  const std::string ref = c.replicas[0]->database().get("log");
  EXPECT_EQ(ref.size(), 50u);
  for (auto& r : c.replicas) EXPECT_EQ(r->database().get("log"), ref);
}

TEST(Corel, CommitRequiresAcksFromWholeView) {
  // An action submitted as a partition hits cannot commit until the view
  // change removes the unreachable replica from the required ack set; it
  // then commits in the reduced view.
  CorelCluster c(3, {});
  c.sim.run_for(millis(500));
  const ConfigId old_view = c.replicas[0]->group_comm().config().id;
  c.net.set_components({{0, 1}, {2}});
  bool decided = false;
  SimTime decided_at = 0;
  c.replicas[0]->submit(Command::put("k", "v"), [&](bool) {
    decided = true;
    decided_at = c.sim.now();
  });
  c.sim.run_for(seconds(1));
  ASSERT_TRUE(decided);
  // The commit happened in the post-partition view, not the old one.
  EXPECT_NE(c.replicas[0]->group_comm().config().id, old_view);
  EXPECT_EQ(c.replicas[0]->group_comm().config().members, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(c.replicas[1]->database().get("k"), "v");
  EXPECT_EQ(c.replicas[2]->database().get("k"), "");  // detached, never got it
  (void)decided_at;
}

}  // namespace
}  // namespace tordb::baselines
