// Randomized cross-shard property test: independent engine groups under
// partitions, merges, crashes and recoveries, with a mix of single- and
// cross-shard traffic through shard::Router.
//
// Invariants asserted throughout and at quiescence:
//  - per-group Theorem 1: each shard's members agree on their green prefix
//    (the online checker also verifies this per group, event by event);
//  - cross-shard all-or-nothing: every cross-shard action is applied at
//    EVERY involved shard (its marker key is present) or at none, and the
//    router never records a partial abort;
//  - liveness: after healing, every submitted action completes, every shard
//    converges to one primary, and per-key counters equal the number of
//    committed adds (exactly-once across fail-over).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "shard/router.h"
#include "txn/coordinator.h"
#include "util/rng.h"
#include "workload/sharded_cluster.h"

namespace tordb::shard {
namespace {

using db::Command;
using workload::ShardedCluster;
using workload::ShardedClusterOptions;

struct Scenario {
  std::uint64_t seed;
  int shards;
  int steps;
};

struct CrossRecord {
  std::string marker;
  std::vector<int> involved;
  bool replied = false;
  bool committed = false;
};

class CrossShardSchedule : public ::testing::TestWithParam<Scenario> {};

TEST_P(CrossShardSchedule, AllOrNothingAndPerGroupSafety) {
  const Scenario sc = GetParam();
  Rng rng(sc.seed * 62233);
  ShardedClusterOptions o;
  o.shards = sc.shards;
  o.replicas_per_shard = 3;
  o.seed = sc.seed;
  // Sessions must out-wait any partition the schedule can produce, so the
  // only abort path (attempt exhaustion) is unreachable and all-or-nothing
  // is strict.
  o.session.max_attempts_per_request = 100000;
  ShardedCluster c(o);
  c.run_for(seconds(2));

  // One key pool per shard for targeted traffic.
  std::vector<std::string> key_of(static_cast<std::size_t>(sc.shards));
  for (int i = 0;; ++i) {
    const std::string key = "k" + std::to_string(i);
    auto& slot = key_of[static_cast<std::size_t>(c.directory().shard_of(key))];
    if (slot.empty()) slot = key;
    bool full = true;
    for (const auto& k : key_of) full = full && !k.empty();
    if (full) break;
  }

  std::int64_t next_client = 0;
  std::vector<CrossRecord> crossed;
  // Expected per-shard counter value, counted at submit time: with the
  // abort path closed, every submitted add must eventually commit exactly
  // once.
  std::vector<std::int64_t> expected(static_cast<std::size_t>(sc.shards), 0);
  std::vector<std::vector<bool>> down(
      static_cast<std::size_t>(sc.shards), std::vector<bool>(3, false));
  std::uint64_t submitted = 0, committed_replies = 0;

  auto submit_single = [&](int shard) {
    const std::int64_t client = next_client++ % 8;
    Command cmd;
    cmd.ops.push_back(db::Op{db::OpType::kAdd, "cnt/" + key_of[static_cast<std::size_t>(shard)],
                             "", 1});
    ++expected[static_cast<std::size_t>(shard)];
    ++submitted;
    c.router().submit(client, cmd, [&committed_replies](const RouteReply& r) {
      if (r.committed) ++committed_replies;
    });
  };

  // Mirrors the router's per-client cross-sequence counter so the test
  // knows each cross action's marker key (cross clients use a dedicated id
  // range, so the counters track exactly).
  std::map<std::int64_t, std::int64_t> xseq;
  auto submit_cross = [&] {
    const int a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(sc.shards)));
    const int b = (a + 1 + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(sc.shards - 1)))) %
                  sc.shards;
    const std::int64_t client = 100 + next_client++ % 8;
    Command cmd;
    cmd.ops.push_back(
        db::Op{db::OpType::kAdd, "cnt/" + key_of[static_cast<std::size_t>(a)], "", 1});
    cmd.ops.push_back(
        db::Op{db::OpType::kAdd, "cnt/" + key_of[static_cast<std::size_t>(b)], "", 1});
    ++expected[static_cast<std::size_t>(a)];
    ++expected[static_cast<std::size_t>(b)];
    ++submitted;
    const std::size_t slot = crossed.size();
    crossed.push_back(CrossRecord{});
    crossed[slot].involved = c.directory().shards_of(cmd);
    crossed[slot].marker = Router::cross_marker_key(client, ++xseq[client]);
    c.router().submit(client, cmd, [&crossed, slot, &committed_replies](const RouteReply& r) {
      crossed[slot].replied = true;
      crossed[slot].committed = r.committed;
      if (r.committed) ++committed_replies;
    });
  };

  for (int step = 0; step < sc.steps; ++step) {
    const int what = static_cast<int>(rng.next_below(10));
    if (what < 4) {
      const int burst = static_cast<int>(rng.next_range(1, 3));
      for (int i = 0; i < burst; ++i) {
        submit_single(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(sc.shards))));
      }
    } else if (what < 6 && sc.shards > 1) {
      submit_cross();
    } else if (what == 6) {
      // Partition a random shard: isolate one member from the other two.
      const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(sc.shards)));
      const int lone = static_cast<int>(rng.next_below(3));
      std::vector<int> rest;
      for (int i = 0; i < 3; ++i) {
        if (i != lone) rest.push_back(i);
      }
      c.partition_shard(s, {{lone}, rest});
    } else if (what == 7) {
      c.heal();
    } else if (what == 8) {
      const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(sc.shards)));
      const int i = static_cast<int>(rng.next_below(3));
      if (!down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]) {
        down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] = true;
        c.crash(s, i);
      }
    } else if (what == 9) {
      for (int s = 0; s < sc.shards; ++s) {
        for (int i = 0; i < 3; ++i) {
          if (down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]) {
            down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] = false;
            c.recover(s, i);
            break;
          }
        }
      }
    }
    c.run_for(millis(static_cast<std::int64_t>(rng.next_range(10, 200))));
    ASSERT_EQ(c.check_green_prefix_consistency(), std::nullopt) << "seed " << sc.seed;
  }

  // Quiesce: heal, recover everyone, drain the router.
  for (int s = 0; s < sc.shards; ++s) {
    for (int i = 0; i < 3; ++i) {
      if (down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]) c.recover(s, i);
    }
  }
  c.heal();
  for (int rounds = 0; !c.router().idle() && rounds < 120; ++rounds) c.run_for(seconds(1));
  ASSERT_TRUE(c.router().idle()) << "router never drained, seed " << sc.seed;
  c.run_for(seconds(15));  // every shard converges to one primary

  // Liveness: with the abort path closed, everything committed.
  EXPECT_EQ(committed_replies, submitted) << "seed " << sc.seed;
  EXPECT_EQ(c.router().stats().cross_partial_aborts, 0u) << "seed " << sc.seed;

  // All-or-nothing: each cross action's marker is present at every involved
  // shard (committed) — never at a strict subset.
  for (const CrossRecord& rec : crossed) {
    ASSERT_TRUE(rec.replied) << rec.marker << " seed " << sc.seed;
    EXPECT_TRUE(rec.committed) << rec.marker << " seed " << sc.seed;
    int present = 0;
    for (int s : rec.involved) {
      if (!c.node(s, 0).engine().database().get(rec.marker).empty()) ++present;
    }
    const int want = rec.committed ? static_cast<int>(rec.involved.size()) : 0;
    EXPECT_EQ(present, want) << "partial cross-shard application of " << rec.marker
                             << ", seed " << sc.seed;
  }

  for (int s = 0; s < sc.shards; ++s) {
    ASSERT_TRUE(c.converged(s)) << "shard " << s << " not converged, seed " << sc.seed;
    // An absent key reads "" — a shard that saw no adds stays absent.
    const std::int64_t want = expected[static_cast<std::size_t>(s)];
    EXPECT_EQ(c.node(s, 0).engine().database().get(
                  "cnt/" + key_of[static_cast<std::size_t>(s)]),
              want ? std::to_string(want) : "")
        << "shard " << s << " seed " << sc.seed;
  }
  EXPECT_EQ(c.check_all(), std::nullopt) << "seed " << sc.seed;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> v;
  for (std::uint64_t s = 1; s <= 30; ++s) v.push_back({s, 2, 24});
  for (std::uint64_t s = 31; s <= 56; ++s) v.push_back({s, 3, 20});
  return v;
}

INSTANTIATE_TEST_SUITE_P(CrossShard, CrossShardSchedule, ::testing::ValuesIn(scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_s" +
                                  std::to_string(info.param.shards);
                         });

// ---------------------------------------------------------------------------
// Ranged directories with online rebalancing: the same churn (partitions,
// crashes, recoveries, single- and cross-shard adds) interleaved with random
// range moves, splits and merges (DESIGN.md §9). Because keys move between
// green orders mid-run, the end-state oracle is per *key*: the counter at
// the key's FINAL owner equals the adds submitted for it, across every epoch
// bump — exactly-once survives rebalancing. The online checker's range-
// ownership invariant watches every fence/install as it happens.
// ---------------------------------------------------------------------------

class RangedMoveSchedule : public ::testing::TestWithParam<Scenario> {};

TEST_P(RangedMoveSchedule, ExactlyOnceUnderMovesAndChurn) {
  const Scenario sc = GetParam();
  Rng rng(sc.seed * 48271 + 17);
  ShardedClusterOptions o;
  o.shards = sc.shards;
  o.replicas_per_shard = 3;
  o.seed = sc.seed;
  o.session.max_attempts_per_request = 100000;
  // k0..k9 keys; initial split points give every shard a slice.
  o.range_splits = sc.shards == 2 ? std::vector<std::string>{"k5"}
                                  : std::vector<std::string>{"k3", "k7"};
  ShardedCluster c(o);
  c.run_for(seconds(2));

  const auto key = [](int i) { return "k" + std::to_string(i); };
  std::map<std::string, std::int64_t> expected;
  std::vector<std::vector<bool>> down(
      static_cast<std::size_t>(sc.shards), std::vector<bool>(3, false));
  std::uint64_t submitted = 0, committed_replies = 0;
  std::int64_t next_client = 0;
  std::uint64_t moves_attempted = 0;

  auto submit_add = [&](const std::vector<std::string>& keys) {
    const std::int64_t client = next_client++ % 8;
    Command cmd;
    for (const std::string& k : keys) {
      cmd.ops.push_back(db::Op{db::OpType::kAdd, k, "", 1});
      ++expected[k];
    }
    ++submitted;
    c.router().submit(client, cmd, [&committed_replies](const RouteReply& r) {
      if (r.committed) ++committed_replies;
    });
  };

  for (int step = 0; step < sc.steps; ++step) {
    const int what = static_cast<int>(rng.next_below(12));
    if (what < 4) {
      const int burst = static_cast<int>(rng.next_range(1, 3));
      for (int i = 0; i < burst; ++i) {
        submit_add({key(static_cast<int>(rng.next_below(10)))});
      }
    } else if (what < 6) {
      const int a = static_cast<int>(rng.next_below(10));
      const int b = (a + 1 + static_cast<int>(rng.next_below(9))) % 10;
      submit_add({key(a), key(b)});
    } else if (what == 6) {
      const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(sc.shards)));
      const int lone = static_cast<int>(rng.next_below(3));
      std::vector<int> rest;
      for (int i = 0; i < 3; ++i) {
        if (i != lone) rest.push_back(i);
      }
      c.partition_shard(s, {{lone}, rest});
    } else if (what == 7) {
      c.heal();
    } else if (what == 8) {
      const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(sc.shards)));
      const int i = static_cast<int>(rng.next_below(3));
      if (!down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]) {
        down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] = true;
        c.crash(s, i);
      }
    } else if (what == 9) {
      for (int s = 0; s < sc.shards; ++s) {
        for (int i = 0; i < 3; ++i) {
          if (down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]) {
            down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] = false;
            c.recover(s, i);
            break;
          }
        }
      }
    } else if (what == 10) {
      // Random move: any range to a different shard. Rejections (busy
      // range) are part of the schedule.
      const int r = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(c.directory().range_count())));
      const auto [lo, hi] = c.directory().range_bounds(r);
      const int owner = c.directory().range_owner(r);
      const int to = (owner + 1 +
                      static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(sc.shards - 1)))) %
                     sc.shards;
      if (c.move_range(lo, hi, to)) ++moves_attempted;
    } else {
      // Refine or coarsen the map: split inside a random key's slot, or
      // merge away a random interior bound (rejected across owners).
      if (rng.next_below(2) == 0) {
        c.split_at(key(static_cast<int>(rng.next_below(10))) + "~");
      } else if (c.directory().range_count() > 1) {
        const int r = 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(c.directory().range_count() - 1)));
        c.merge_at(c.directory().range_bounds(r).first);
      }
    }
    c.run_for(millis(static_cast<std::int64_t>(rng.next_range(10, 200))));
    ASSERT_EQ(c.check_green_prefix_consistency(), std::nullopt) << "seed " << sc.seed;
  }

  // Quiesce: heal, recover everyone, drain router and rebalancer.
  for (int s = 0; s < sc.shards; ++s) {
    for (int i = 0; i < 3; ++i) {
      if (down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]) c.recover(s, i);
    }
  }
  c.heal();
  for (int rounds = 0; !(c.router().idle() && c.rebalancer().idle()) && rounds < 120;
       ++rounds) {
    c.run_for(seconds(1));
  }
  ASSERT_TRUE(c.router().idle()) << "router never drained, seed " << sc.seed;
  ASSERT_TRUE(c.rebalancer().idle()) << "rebalancer never drained, seed " << sc.seed;
  c.run_for(seconds(15));  // every shard converges to one primary

  EXPECT_EQ(committed_replies, submitted) << "seed " << sc.seed;
  EXPECT_EQ(c.router().stats().cross_partial_aborts, 0u) << "seed " << sc.seed;
  for (int s = 0; s < sc.shards; ++s) {
    ASSERT_TRUE(c.converged(s)) << "shard " << s << " not converged, seed " << sc.seed;
  }
  // Per-key oracle at the key's final owner: every add exactly once, no key
  // lost or duplicated by any move.
  for (const auto& [k, want] : expected) {
    const int owner = c.directory().shard_of(k);
    EXPECT_EQ(c.node(owner, 0).engine().database().get(k), std::to_string(want))
        << "key " << k << " owner " << owner << " seed " << sc.seed
        << " (moves attempted: " << moves_attempted << ")";
  }
  EXPECT_EQ(c.check_all(), std::nullopt) << "seed " << sc.seed;
}

std::vector<Scenario> move_scenarios() {
  std::vector<Scenario> v;
  for (std::uint64_t s = 1; s <= 16; ++s) v.push_back({s, 2, 26});
  for (std::uint64_t s = 17; s <= 28; ++s) v.push_back({s, 3, 22});
  return v;
}

INSTANTIATE_TEST_SUITE_P(RangedMoves, RangedMoveSchedule, ::testing::ValuesIn(move_scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_s" +
                                  std::to_string(info.param.shards);
                         });

// ---------------------------------------------------------------------------
// Prepared-check transactions under the same churn (partitions, crashes,
// recoveries, random range moves/splits/merges), interleaved with plain
// cross-shard adds and barrier-stamped snapshot reads. Checked transfers go
// through the router's coordinator handoff (DESIGN.md §13); moves can land
// BETWEEN a transaction's prepare and confirm, exercising the fenced-confirm
// reroute. Oracles at quiescence:
//  - checked atomicity: a transfer's two kAdds both applied (committed) or
//    neither (check-aborted) — per-key counters equal the committed tally;
//  - deterministic votes: a transfer checking the never-written flag against
//    "" always commits, against a bogus value always check-aborts;
//  - no residue: every reserved `__txn*` cell erased at every replica;
//  - checker invariant 9 (prepare before confirm/cancel, never both) holds
//    event-by-event throughout — the online checker runs on every schedule.
// ---------------------------------------------------------------------------

class TxnSchedule : public ::testing::TestWithParam<Scenario> {};

TEST_P(TxnSchedule, PreparedChecksStayAtomicUnderChurnAndMoves) {
  const Scenario sc = GetParam();
  Rng rng(sc.seed * 92821 + 5);
  ShardedClusterOptions o;
  o.shards = sc.shards;
  o.replicas_per_shard = 3;
  o.seed = sc.seed;
  o.session.max_attempts_per_request = 100000;
  o.range_splits = sc.shards == 2 ? std::vector<std::string>{"k5"}
                                  : std::vector<std::string>{"k3", "k7"};
  ShardedCluster c(o);
  c.run_for(seconds(2));

  const auto key = [](int i) { return "k" + std::to_string(i); };
  struct TxnOutcome {
    bool bogus = false;
    bool replied = false;
    bool committed = false;
    bool check_aborted = false;
  };
  struct SnapOutcome {
    bool replied = false;
    bool ok = false;
  };
  std::map<std::string, std::int64_t> committed_adds;
  std::vector<std::unique_ptr<TxnOutcome>> transfers;
  std::vector<std::unique_ptr<SnapOutcome>> snaps;
  std::vector<std::vector<bool>> down(
      static_cast<std::size_t>(sc.shards), std::vector<bool>(3, false));
  std::int64_t next_client = 0;

  // A checked transfer: precondition on the never-written flag key (true
  // against "", deterministically false against "no"), one kAdd per key.
  auto submit_transfer = [&](bool bogus) {
    const int a = static_cast<int>(rng.next_below(10));
    const int b = (a + 1 + static_cast<int>(rng.next_below(9))) % 10;
    const std::int64_t client = 200 + next_client++ % 8;
    Command cmd;
    cmd.ops.push_back(db::Op{db::OpType::kCheck, "flag", bogus ? "no" : "", 0});
    cmd.ops.push_back(db::Op{db::OpType::kAdd, key(a), "", 1});
    cmd.ops.push_back(db::Op{db::OpType::kAdd, key(b), "", 1});
    transfers.push_back(std::make_unique<TxnOutcome>());
    TxnOutcome* out = transfers.back().get();
    out->bogus = bogus;
    c.router().submit(client, cmd,
                      [out, &committed_adds, ka = key(a), kb = key(b)](const RouteReply& r) {
                        out->replied = true;
                        out->committed = r.committed;
                        out->check_aborted = r.check_aborted;
                        if (r.committed) {
                          ++committed_adds[ka];
                          ++committed_adds[kb];
                        }
                      });
  };

  for (int step = 0; step < sc.steps; ++step) {
    const int what = static_cast<int>(rng.next_below(12));
    if (what < 4) {
      const int burst = static_cast<int>(rng.next_range(1, 3));
      for (int i = 0; i < burst; ++i) submit_transfer(rng.next_below(6) == 0);
    } else if (what == 4) {
      // Plain unchecked cross add: rides the router's commit barrier and
      // shares keys (and green positions) with the coordinator's markers.
      const int a = static_cast<int>(rng.next_below(10));
      const int b = (a + 1 + static_cast<int>(rng.next_below(9))) % 10;
      Command cmd;
      cmd.ops.push_back(db::Op{db::OpType::kAdd, key(a), "", 1});
      cmd.ops.push_back(db::Op{db::OpType::kAdd, key(b), "", 1});
      c.router().submit(next_client++ % 8, cmd,
                        [&committed_adds, ka = key(a), kb = key(b)](const RouteReply& r) {
                          if (r.committed) {
                            ++committed_adds[ka];
                            ++committed_adds[kb];
                          }
                        });
    } else if (what == 5) {
      // Barrier-stamped snapshot read of two random keys mid-churn.
      Command q;
      q.ops.push_back(db::Op{db::OpType::kGet, key(static_cast<int>(rng.next_below(10))), "", 0});
      q.ops.push_back(db::Op{db::OpType::kGet, key(static_cast<int>(rng.next_below(10))), "", 0});
      snaps.push_back(std::make_unique<SnapOutcome>());
      SnapOutcome* out = snaps.back().get();
      c.txn().snapshot_read(std::move(q), [out](const txn::SnapshotReadReply& r) {
        out->replied = true;
        out->ok = r.ok;
      });
    } else if (what == 6) {
      const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(sc.shards)));
      const int lone = static_cast<int>(rng.next_below(3));
      std::vector<int> rest;
      for (int i = 0; i < 3; ++i) {
        if (i != lone) rest.push_back(i);
      }
      c.partition_shard(s, {{lone}, rest});
    } else if (what == 7) {
      c.heal();
    } else if (what == 8) {
      const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(sc.shards)));
      const int i = static_cast<int>(rng.next_below(3));
      if (!down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]) {
        down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] = true;
        c.crash(s, i);
      }
    } else if (what == 9) {
      for (int s = 0; s < sc.shards; ++s) {
        for (int i = 0; i < 3; ++i) {
          if (down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]) {
            down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] = false;
            c.recover(s, i);
            break;
          }
        }
      }
    } else if (what == 10) {
      // Random range move: can land between a prepare and its confirm, in
      // which case the coordinator must reroute the decided slice.
      const int r = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(c.directory().range_count())));
      const auto [lo, hi] = c.directory().range_bounds(r);
      const int owner = c.directory().range_owner(r);
      const int to = (owner + 1 +
                      static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(sc.shards - 1)))) %
                     sc.shards;
      c.move_range(lo, hi, to);
    } else {
      if (rng.next_below(2) == 0) {
        c.split_at(key(static_cast<int>(rng.next_below(10))) + "~");
      } else if (c.directory().range_count() > 1) {
        const int r = 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(c.directory().range_count() - 1)));
        c.merge_at(c.directory().range_bounds(r).first);
      }
    }
    c.run_for(millis(static_cast<std::int64_t>(rng.next_range(10, 200))));
    ASSERT_EQ(c.check_green_prefix_consistency(), std::nullopt) << "seed " << sc.seed;
  }

  // Quiesce: heal, recover everyone, drain router + rebalancer + coordinator.
  for (int s = 0; s < sc.shards; ++s) {
    for (int i = 0; i < 3; ++i) {
      if (down[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]) c.recover(s, i);
    }
  }
  c.heal();
  for (int rounds = 0;
       !(c.router().idle() && c.rebalancer().idle() && c.txn().idle()) && rounds < 120;
       ++rounds) {
    c.run_for(seconds(1));
  }
  ASSERT_TRUE(c.router().idle()) << "router never drained, seed " << sc.seed;
  ASSERT_TRUE(c.rebalancer().idle()) << "rebalancer never drained, seed " << sc.seed;
  ASSERT_TRUE(c.txn().idle()) << "coordinator never drained, seed " << sc.seed;
  c.run_for(seconds(15));  // every shard converges to one primary

  // Deterministic votes: the flag key is never written.
  for (const auto& t : transfers) {
    ASSERT_TRUE(t->replied) << "seed " << sc.seed;
    if (t->bogus) {
      EXPECT_FALSE(t->committed) << "seed " << sc.seed;
      EXPECT_TRUE(t->check_aborted) << "seed " << sc.seed;
    } else {
      EXPECT_TRUE(t->committed) << "seed " << sc.seed;
    }
  }
  for (const auto& s : snaps) {
    ASSERT_TRUE(s->replied) << "snapshot read never replied, seed " << sc.seed;
    EXPECT_TRUE(s->ok) << "seed " << sc.seed;
  }

  for (int s = 0; s < sc.shards; ++s) {
    ASSERT_TRUE(c.converged(s)) << "shard " << s << " not converged, seed " << sc.seed;
  }
  // Checked atomicity: each key's counter equals the committed tally — an
  // aborted transfer that half-applied, or a lost/duplicated confirm across
  // a move, breaks this equality.
  for (const auto& [k, want] : committed_adds) {
    const int owner = c.directory().shard_of(k);
    EXPECT_EQ(c.node(owner, 0).engine().database().get(k),
              want ? std::to_string(want) : "")
        << "key " << k << " owner " << owner << " seed " << sc.seed;
  }
  // No reserved-key residue at any running replica.
  for (int s = 0; s < sc.shards; ++s) {
    for (int i = 0; i < 3; ++i) {
      if (!c.node(s, i).running()) continue;
      EXPECT_TRUE(c.node(s, i).engine().database().scan_prefix("__txn").empty())
          << "shard " << s << " replica " << i << " seed " << sc.seed;
    }
  }
  ASSERT_NE(c.checker(), nullptr);
  EXPECT_EQ(c.checker()->txn_unresolved(), 0) << "seed " << sc.seed;
  EXPECT_EQ(c.check_all(), std::nullopt) << "seed " << sc.seed;
}

std::vector<Scenario> txn_scenarios() {
  std::vector<Scenario> v;
  for (std::uint64_t s = 1; s <= 12; ++s) v.push_back({s, 2, 22});
  for (std::uint64_t s = 13; s <= 20; ++s) v.push_back({s, 3, 18});
  return v;
}

INSTANTIATE_TEST_SUITE_P(TxnChurn, TxnSchedule, ::testing::ValuesIn(txn_scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_s" +
                                  std::to_string(info.param.shards);
                         });

}  // namespace
}  // namespace tordb::shard
