// Unit tests for the ActionLog subsystem (the engine's colored-action
// history), plus an engine-level determinism check that batched
// persist+multicast leaves replicated state bit-identical to per-action
// operation.
#include "core/action_log.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "util/rng.h"
#include "workload/cluster.h"

namespace tordb::core {
namespace {

Action mk(NodeId creator, std::int64_t index) {
  Action a;
  a.type = ActionType::kUpdate;
  a.id = ActionId{creator, index};
  a.update = db::Command::add("k" + std::to_string(index), index);
  return a;
}

TEST(ActionLog, RedThenGreenPromotion) {
  ActionLog log;
  const auto newly = log.mark_red(mk(1, 1));
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0]->id, (ActionId{1, 1}));
  EXPECT_EQ(log.red_cut(1), 1);
  EXPECT_EQ(log.green_red_cut(1), 0);
  EXPECT_EQ(log.red_count(), 1u);
  EXPECT_FALSE(log.is_green(ActionId{1, 1}));

  const auto res = log.mark_green(mk(1, 1));
  EXPECT_TRUE(res.newly_red.empty());  // already red
  EXPECT_EQ(res.position, 1);
  EXPECT_EQ(log.green_count(), 1);
  EXPECT_EQ(log.green_red_cut(1), 1);
  EXPECT_EQ(log.red_count(), 0u);
  EXPECT_TRUE(log.is_green(ActionId{1, 1}));
  EXPECT_EQ(log.position_of(ActionId{1, 1}), 1);
  EXPECT_EQ(log.green_action_at(1), (ActionId{1, 1}));

  // Marking green again is a duplicate: no new position.
  EXPECT_EQ(log.mark_green(mk(1, 1)).position, 0);
  EXPECT_EQ(log.green_count(), 1);
}

TEST(ActionLog, OutOfOrderRetransmissionsParkUntilGapFills) {
  ActionLog log;
  // Exchange-phase retransmissions may arrive ahead of their creator-FIFO
  // predecessors; they must wait in the retransmission buffer.
  EXPECT_TRUE(log.mark_red(mk(1, 2)).empty());
  EXPECT_TRUE(log.mark_red(mk(1, 3)).empty());
  EXPECT_EQ(log.red_cut(1), 0);
  EXPECT_EQ(log.waiting_count(), 2u);
  EXPECT_EQ(log.red_count(), 0u);

  // The gap-filler drains the parked chain in index order.
  const auto newly = log.mark_red(mk(1, 1));
  ASSERT_EQ(newly.size(), 3u);
  EXPECT_EQ(newly[0]->id, (ActionId{1, 1}));
  EXPECT_EQ(newly[1]->id, (ActionId{1, 2}));
  EXPECT_EQ(newly[2]->id, (ActionId{1, 3}));
  EXPECT_EQ(log.red_cut(1), 3);
  EXPECT_EQ(log.waiting_count(), 0u);
  EXPECT_EQ(log.red_count(), 3u);

  // Duplicates of already-ordered actions are ignored.
  EXPECT_TRUE(log.mark_red(mk(1, 2)).empty());
  EXPECT_EQ(log.red_cut(1), 3);
}

TEST(ActionLog, GreenCoverageMayRunAheadOfRedCut) {
  ActionLog log;
  // A green retransmission for {1,5} can arrive while the local red chain
  // is still incomplete; green coverage then exceeds the red cut and the
  // pending-red set stays empty (nothing is red-but-not-green).
  const auto res = log.mark_green(mk(1, 5));
  EXPECT_EQ(res.position, 1);
  EXPECT_TRUE(log.is_green(ActionId{1, 5}));
  EXPECT_EQ(log.green_red_cut(1), 5);
  EXPECT_EQ(log.red_cut(1), 0);
  EXPECT_EQ(log.red_count(), 0u);
  EXPECT_NE(log.body_of(ActionId{1, 5}), nullptr);
}

TEST(ActionLog, PerCreatorCutsAndPendingReds) {
  ActionLog log;
  for (std::int64_t i = 1; i <= 3; ++i) log.mark_red(mk(1, i));
  for (std::int64_t i = 1; i <= 2; ++i) log.mark_red(mk(2, i));
  log.mark_green(mk(1, 1));
  log.mark_green(mk(2, 1));

  EXPECT_EQ(log.red_count(), 3u);
  const auto pending = log.pending_red_ids();
  ASSERT_EQ(pending.size(), 3u);
  EXPECT_EQ(pending[0], (ActionId{1, 2}));
  EXPECT_EQ(pending[1], (ActionId{1, 3}));
  EXPECT_EQ(pending[2], (ActionId{2, 2}));

  std::vector<ActionId> seen;
  log.for_each_pending_red([&](const Action& a) { seen.push_back(a.id); });
  EXPECT_EQ(seen, pending);

  using Pairs = std::vector<std::pair<NodeId, std::int64_t>>;
  EXPECT_EQ(log.red_cut_pairs(), (Pairs{{1, 3}, {2, 2}}));
  EXPECT_EQ(log.green_red_cut_pairs(), (Pairs{{1, 1}, {2, 1}}));
}

// Satellite regression: positions at or below the white line and beyond
// the green count must resolve to kNoNode / nullptr, never touch freed
// storage.
TEST(ActionLog, WhiteTrimBoundsHardened) {
  ActionLog log;
  for (std::int64_t i = 1; i <= 5; ++i) log.mark_green(mk(1, i));
  ASSERT_EQ(log.green_count(), 5);

  EXPECT_EQ(log.trim_white_to(3), 3u);
  EXPECT_EQ(log.white_count(), 3);
  EXPECT_EQ(log.green_count(), 5);

  // Probing the trimmed prefix.
  for (std::int64_t pos : {-1, 0, 1, 2, 3}) {
    EXPECT_EQ(log.green_action_at(pos).server_id, kNoNode) << "pos " << pos;
    EXPECT_EQ(log.green_body_at(pos), nullptr) << "pos " << pos;
  }
  // Probing beyond the green count.
  for (std::int64_t pos : {6, 7, 100}) {
    EXPECT_EQ(log.green_action_at(pos).server_id, kNoNode) << "pos " << pos;
    EXPECT_EQ(log.green_body_at(pos), nullptr) << "pos " << pos;
  }
  // The untrimmed tail still resolves.
  EXPECT_EQ(log.green_action_at(4), (ActionId{1, 4}));
  ASSERT_NE(log.green_body_at(5), nullptr);
  EXPECT_EQ(log.green_body_at(5)->id, (ActionId{1, 5}));

  // Trimmed bodies are released; position lookups of trimmed ids miss.
  EXPECT_EQ(log.body_of(ActionId{1, 2}), nullptr);
  EXPECT_EQ(log.position_of(ActionId{1, 2}), 0);
  EXPECT_EQ(log.stored_bodies(), 2u);

  // A trim line behind the current one is a no-op.
  EXPECT_EQ(log.trim_white_to(2), 0u);
  EXPECT_EQ(log.white_count(), 3);
}

TEST(ActionLog, TrimSurvivesInternalCompaction) {
  ActionLog log;
  const std::int64_t n = 300;
  for (std::int64_t i = 1; i <= n; ++i) log.mark_green(mk(1, i));
  // Trim in steps so the contiguous green vector compacts its dead prefix
  // at least once; indexing must stay position-correct throughout.
  for (std::int64_t line = 50; line <= 250; line += 50) {
    log.trim_white_to(line);
    EXPECT_EQ(log.green_action_at(line).server_id, kNoNode);
    EXPECT_EQ(log.green_action_at(line + 1), (ActionId{1, line + 1}));
    EXPECT_EQ(log.green_action_at(n), (ActionId{1, n}));
  }
  EXPECT_EQ(log.white_count(), 250);
  EXPECT_EQ(log.stored_bodies(), 50u);
}

TEST(ActionLog, AdoptGreenPrefixReleasesCoveredBodies) {
  ActionLog log;
  for (std::int64_t i = 1; i <= 4; ++i) log.mark_red(mk(1, i));
  ASSERT_EQ(log.red_count(), 4u);

  // A §5.2 snapshot covers creator 1 up to index 2 inside a 10-green
  // prefix; the covered reds become (trimmed) green, the rest stay pending.
  log.adopt_green_prefix(10, {{1, 2}});
  EXPECT_EQ(log.green_count(), 10);
  EXPECT_EQ(log.white_count(), 10);
  EXPECT_TRUE(log.is_green(ActionId{1, 2}));
  EXPECT_EQ(log.body_of(ActionId{1, 1}), nullptr);
  EXPECT_EQ(log.green_action_at(5).server_id, kNoNode);  // adopted: no ids
  EXPECT_EQ(log.pending_red_ids(), (std::vector<ActionId>{{1, 3}, {1, 4}}));
  EXPECT_NE(log.body_of(ActionId{1, 3}), nullptr);
}

TEST(ActionLog, ResetAndReplayFromRecovery) {
  ActionLog log;
  log.mark_red(mk(9, 1));
  log.reset(7, {{1, 7}});
  EXPECT_EQ(log.green_count(), 7);
  EXPECT_EQ(log.white_count(), 7);
  EXPECT_EQ(log.red_cut(1), 7);
  EXPECT_EQ(log.green_red_cut(1), 7);
  EXPECT_EQ(log.red_count(), 0u);
  EXPECT_EQ(log.stored_bodies(), 0u);

  // Replay accepts only the exact next position.
  EXPECT_FALSE(log.replay_green(7, mk(1, 7)));
  EXPECT_FALSE(log.replay_green(9, mk(2, 1)));
  EXPECT_TRUE(log.replay_green(8, mk(1, 8)));
  EXPECT_EQ(log.green_count(), 8);
  EXPECT_EQ(log.green_action_at(8), (ActionId{1, 8}));
  EXPECT_TRUE(log.is_green(ActionId{1, 8}));
}

// --- batched persist+multicast determinism ---------------------------------

using workload::ClusterOptions;
using workload::EngineCluster;

struct RunResult {
  std::vector<std::uint64_t> digests;
  std::vector<std::int64_t> greens;
  std::uint64_t batches = 0;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

// One submitting engine buffers a burst of actions during a membership
// change; with batching they flush as a single record+multicast, without
// as per-action ones. Replicated state must come out identical.
RunResult run_burst(std::uint64_t seed, bool batch) {
  ClusterOptions o;
  o.replicas = 5;
  o.seed = seed;
  o.node.engine.batch_persist = batch;
  EngineCluster c(o);
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3, 4}});
  c.run_for(seconds(2));
  c.heal();

  // Catch node 0 mid-exchange so the submissions buffer and flush together.
  bool submitted = false;
  for (int step = 0; step < 4000 && !submitted; ++step) {
    c.run_for(millis(1));
    const auto s = c.engine(0).state();
    if (s != EngineState::kRegPrim && s != EngineState::kNonPrim) {
      for (int k = 0; k < 6; ++k) {
        c.engine(0).submit({}, db::Command::add("burst" + std::to_string(k), k + 1), 0,
                           Semantics::kStrict, nullptr);
      }
      submitted = true;
    }
  }
  EXPECT_TRUE(submitted) << "never caught an exchange window";
  c.run_for(seconds(5));

  RunResult r;
  for (NodeId i = 0; i < 5; ++i) {
    r.digests.push_back(c.engine(i).db_digest());
    r.greens.push_back(c.engine(i).green_count());
  }
  r.batches = c.engine(0).stats().persist_batches;
  return r;
}

TEST(ActionLogBatching, BatchedEqualsUnbatchedAcrossSeeds) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    RunResult batched = run_burst(seed, true);
    RunResult unbatched = run_burst(seed, false);
    EXPECT_GE(batched.batches, 1u) << "seed " << seed;
    EXPECT_EQ(unbatched.batches, 0u) << "seed " << seed;
    // Same green prefix, bit-identical database digests.
    batched.batches = unbatched.batches = 0;
    EXPECT_EQ(batched, unbatched) << "seed " << seed;
    for (std::size_t i = 1; i < batched.digests.size(); ++i) {
      EXPECT_EQ(batched.digests[i], batched.digests[0]) << "seed " << seed;
    }
  }
}

TEST(ActionLogBatching, BatchedRunsAreReproducible) {
  const RunResult a = run_burst(7, true);
  const RunResult b = run_burst(7, true);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tordb::core
