// Targeted tests of the exchange phase (paper A.4–A.6) and its edge cases:
// retransmission interleavings, the catch-up state transfer, white-line
// trimming interplay, and request buffering across state-machine states.
#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "workload/cluster.h"

namespace tordb::core {
namespace {

using db::Command;
using workload::ClusterOptions;
using workload::EngineCluster;

ClusterOptions small(int n, std::uint64_t seed = 1) {
  ClusterOptions o;
  o.replicas = n;
  o.seed = seed;
  return o;
}

TEST(CoreExchange, DivergedComponentsMergeBothWays) {
  // Both sides accumulate reds; the exchange must interleave green and red
  // retransmissions correctly in both directions.
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3, 4}});
  c.run_for(millis(400));
  // Majority commits greens; minority queues reds from two creators.
  for (int i = 0; i < 8; ++i) {
    c.engine(i % 3).submit({}, Command::add("g", 1), 1, Semantics::kStrict, nullptr);
    c.engine(3 + (i % 2)).submit({}, Command::add("r", 1), 2, Semantics::kStrict, nullptr);
    c.run_for(millis(30));
  }
  c.run_for(millis(300));
  ASSERT_EQ(c.engine(0).database().get("g"), "8");
  ASSERT_GT(c.engine(3).red_count(), 0u);
  c.heal();
  c.run_for(seconds(2));
  ASSERT_TRUE(c.converged_primary(c.all_ids()));
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(c.engine(i).database().get("g"), "8") << i;
    EXPECT_EQ(c.engine(i).database().get("r"), "8") << i;
  }
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreExchange, ThreeWayMergeCollectsAllReds) {
  EngineCluster c(small(6, 3));
  c.run_for(seconds(1));
  c.partition({{0, 1}, {2, 3}, {4, 5}});
  c.run_for(millis(400));
  // No quorum anywhere (2 of 6 each); every component queues reds.
  for (NodeId i = 0; i < 6; ++i) {
    c.engine(i).submit({}, Command::add("n", 1), i, Semantics::kStrict, nullptr);
  }
  c.run_for(millis(300));
  for (NodeId i = 0; i < 6; ++i) {
    EXPECT_EQ(c.engine(i).state(), EngineState::kNonPrim) << i;
  }
  c.heal();
  c.run_for(seconds(2));
  ASSERT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.engine(0).database().get("n"), "6");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreExchange, StaggeredMergesPropagateByEventualPath) {
  // Paper §3.1: information propagates by eventual path — reds learned in a
  // non-primary merge reach the primary through a later merge even though
  // their creator never talks to the primary directly.
  EngineCluster c(small(5, 7));
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3}, {4}});
  c.run_for(millis(400));
  bool creator_replied = false;
  c.engine(4).submit({}, Command::put("lonely", "action"), 1, Semantics::kStrict,
                     [&](const Reply&) { creator_replied = true; });
  c.run_for(millis(300));
  // {3} and {4} merge: node 3 learns node 4's red action (still no quorum).
  c.partition({{0, 1, 2}, {3, 4}});
  c.run_for(millis(500));
  EXPECT_GT(c.engine(3).red_count(), 0u);
  // Now node 4 is isolated again; node 3 joins the primary and carries the
  // action with it.
  c.partition({{0, 1, 2, 3}, {4}});
  c.run_for(seconds(1));
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(c.engine(i).database().get("lonely"), "action") << i;
  }
  // The creator itself is still cut off and unanswered...
  EXPECT_FALSE(creator_replied);
  c.heal();
  c.run_for(seconds(1));
  EXPECT_TRUE(creator_replied);  // ...until it merges and sees its green.
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreExchange, RequestsBufferedDuringExchangeAreServed) {
  EngineCluster c(small(4, 9));
  c.run_for(seconds(1));
  // Trigger a view change, then submit while the exchange is in progress.
  c.partition({{0, 1, 2}, {3}});
  c.run_for(millis(3));  // detection fired; exchange starting
  int replies = 0;
  for (int i = 0; i < 5; ++i) {
    c.engine(0).submit({}, Command::add("buffered", 1), 1, Semantics::kStrict,
                       [&](const Reply&) { ++replies; });
  }
  c.run_for(seconds(1));
  EXPECT_EQ(replies, 5);
  EXPECT_EQ(c.engine(1).database().get("buffered"), "5");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreExchange, WhiteTrimmedHistoryStillExchangesViaCatchup) {
  // A replica that trimmed white bodies can still bring a straggler up via
  // the snapshot-based catch-up if its white line moved past the
  // straggler's green count. Force this: joiner inherits a snapshot (its
  // whole prefix is body-less) and must update a straggler alone.
  EngineCluster c(small(3, 11));
  c.run_for(seconds(1));
  for (int i = 0; i < 12; ++i) {
    c.engine(0).submit({}, Command::add("n", 1), 1, Semantics::kStrict, nullptr);
    c.run_for(millis(25));
  }
  // Straggler 2 detaches and misses further progress.
  c.partition({{0, 1}, {2}});
  c.run_for(millis(400));
  for (int i = 0; i < 6; ++i) {
    c.engine(0).submit({}, Command::add("n", 1), 1, Semantics::kStrict, nullptr);
    c.run_for(millis(25));
  }
  // Joiner 3 joins the majority via snapshot.
  auto& joiner = c.add_dormant(3);
  c.partition({{0, 1, 3}, {2}});
  joiner.join_via({0});
  c.run_for(seconds(2));
  ASSERT_TRUE(joiner.running());
  const auto snapshots_before = joiner.engine().stats().snapshots_sent;
  // Pair the joiner with the straggler only: the joiner is most updated but
  // holds no bodies => catch-up transfer.
  c.partition({{2, 3}, {0, 1}});
  c.run_for(seconds(2));
  EXPECT_EQ(c.engine(2).green_count(), joiner.engine().green_count());
  EXPECT_EQ(c.engine(2).db_digest(), joiner.engine().db_digest());
  EXPECT_GT(joiner.engine().stats().snapshots_sent, snapshots_before);
  c.heal();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary({0, 1, 2, 3}));
  EXPECT_EQ(c.engine(2).database().get("n"), "18");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreExchange, ExchangeInterruptedByAnotherPartition) {
  // A.4/A.6: a transitional configuration during the exchange sends members
  // back to NonPrim; the next regular configuration restarts the exchange.
  EngineCluster c(small(5, 13));
  c.run_for(seconds(1));
  c.engine(0).submit({}, Command::put("k", "v"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(200));
  // Cascade: split, then split differently before the first exchange can
  // complete, then heal.
  c.partition({{0, 1, 2}, {3, 4}});
  c.run_for(millis(4));
  c.partition({{0, 1}, {2, 3}, {4}});
  c.run_for(millis(4));
  c.partition({{0, 3}, {1, 2, 4}});
  c.run_for(millis(4));
  c.heal();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.engine(4).database().get("k"), "v");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreExchange, NoQuorumComponentKeepsExchangingKnowledge) {
  // Even components that can never form a primary still synchronize their
  // red knowledge (paper: exchange happens in all components).
  EngineCluster c(small(5, 17));
  c.run_for(seconds(1));
  c.partition({{0, 1}, {2, 3}, {4}});
  c.run_for(millis(400));
  c.engine(0).submit({}, Command::put("a", "1"), 1, Semantics::kStrict, nullptr);
  c.engine(1).submit({}, Command::put("b", "2"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(300));
  // Both members of the 2-node non-primary component know both reds.
  EXPECT_EQ(c.engine(0).red_count(), 2u);
  EXPECT_EQ(c.engine(1).red_count(), 2u);
  // And their dirty views agree.
  EXPECT_EQ(c.engine(0).dirty_database().digest(), c.engine(1).dirty_database().digest());
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreExchange, SubsetViewSkipsRetransmission) {
  // "if the new membership is a subset of the old one, there is no need for
  // action exchange, as the states are already synchronized."
  EngineCluster c(small(4, 19));
  c.run_for(seconds(1));
  for (int i = 0; i < 5; ++i) {
    c.engine(0).submit({}, Command::add("n", 1), 1, Semantics::kStrict, nullptr);
    c.run_for(millis(30));
  }
  c.run_for(millis(300));
  const auto retrans_before = c.engine(0).stats().green_retrans_sent +
                              c.engine(0).stats().red_retrans_sent;
  c.partition({{0, 1, 2}, {3}});
  c.run_for(seconds(1));
  ASSERT_TRUE(c.converged_primary({0, 1, 2}));
  const auto retrans_after = c.engine(0).stats().green_retrans_sent +
                             c.engine(0).stats().red_retrans_sent;
  EXPECT_EQ(retrans_after, retrans_before);  // identical states: nothing to send
}

TEST(CoreExchange, LargeDivergenceExchanges) {
  // Volume test: hundreds of reds and greens across a merge.
  EngineCluster c(small(4, 23));
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3}});
  c.run_for(millis(400));
  for (int i = 0; i < 120; ++i) {
    c.engine(i % 3).submit({}, Command::add("g", 1), 1, Semantics::kStrict, nullptr);
    c.engine(3).submit({}, Command::add("r", 1), 2, Semantics::kStrict, nullptr);
    c.run_for(millis(12));
  }
  c.run_for(millis(500));
  c.heal();
  c.run_for(seconds(4));
  ASSERT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.engine(3).database().get("g"), "120");
  EXPECT_EQ(c.engine(0).database().get("r"), "120");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

}  // namespace
}  // namespace tordb::core
