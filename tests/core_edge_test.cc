// Edge cases of the engine's client interface and membership hooks that
// the scenario-level suites do not isolate.
#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "workload/cluster.h"

namespace tordb::core {
namespace {

using db::Command;
using workload::ClusterOptions;
using workload::EngineCluster;

ClusterOptions small(int n, std::uint64_t seed = 1) {
  ClusterOptions o;
  o.replicas = n;
  o.seed = seed;
  return o;
}

TEST(CoreEdge, SubmitAfterLeaveIsRejected) {
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  c.engine(2).request_leave();
  c.run_for(seconds(1));
  ASSERT_TRUE(c.node(2).has_left());
  // The node's engine is gone; submits must go to surviving members.
  bool ok = false;
  c.engine(0).submit({}, Command::put("k", "v"), 1, Semantics::kStrict,
                     [&](const Reply& r) { ok = !r.aborted; });
  c.run_for(millis(300));
  EXPECT_TRUE(ok);
}

TEST(CoreEdge, DuplicateJoinAnnouncementsAreIdempotent) {
  // Two members announce the same joiner (the joiner retried against a
  // second representative before the first announcement went green): only
  // the first ordered PERSISTENT_JOIN defines the entry point; the second
  // is ignored (§5.2).
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  auto& joiner = c.add_dormant(3);
  // Short retry timeout makes the joiner ask a second representative
  // while the first announcement is still in flight.
  joiner.join_via({0, 1});
  c.engine(1).handle_join_request(3);  // simulate the duplicate directly
  c.run_for(seconds(2));
  ASSERT_TRUE(joiner.running());
  EXPECT_TRUE(c.converged_primary({0, 1, 2, 3}));
  // Server sets contain the joiner exactly once.
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(std::count(c.engine(i).server_set().begin(), c.engine(i).server_set().end(), 3),
              1);
  }
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreEdge, TwoJoinersSimultaneously) {
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  auto& j3 = c.add_dormant(3);
  auto& j4 = c.add_dormant(4);
  j3.join_via({0});
  j4.join_via({1});
  c.run_for(seconds(3));
  ASSERT_TRUE(j3.running());
  ASSERT_TRUE(j4.running());
  EXPECT_TRUE(c.converged_primary({0, 1, 2, 3, 4}));
  EXPECT_EQ(c.engine(0).server_set(), (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreEdge, LeaveWhileExchangeBuffered) {
  // A leave requested during a membership change is buffered and executed
  // once the engine is back in Prim/NonPrim (A.8 Handle_buff_requests).
  EngineCluster c(small(4));
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3}});
  c.run_for(millis(3));  // exchange starting
  c.engine(2).request_leave();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.node(2).has_left());
  EXPECT_TRUE(c.converged_primary({0, 1}));
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreEdge, EmptyUpdateActionsOrderFine) {
  // A pure-query action (empty update part) still flows through the green
  // order and returns its reads.
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  c.engine(0).submit({}, Command::put("k", "v"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(300));
  std::vector<std::string> reads;
  c.engine(1).submit(Command::get("k"), {}, 1, Semantics::kStrict,
                     [&](const Reply& r) { reads = r.reads; });
  c.run_for(millis(300));
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0], "v");
  EXPECT_EQ(c.engine(2).green_count(), 2);  // both ordered
}

TEST(CoreEdge, WeakQueryWithFailedCheckReportsAbort) {
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  bool aborted = false;
  db::Command q;
  q.ops.push_back(db::Op{db::OpType::kCheck, "missing", "expected", 0});
  q.ops.push_back(db::Op{db::OpType::kGet, "missing", "", 0});
  c.engine(0).submit_query(q, QueryMode::kWeak, [&](const Reply& r) { aborted = r.aborted; });
  c.run_for(millis(10));
  EXPECT_TRUE(aborted);
}

TEST(CoreEdge, ManyPendingStrictQueriesFlushTogether) {
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3, 4}});
  c.run_for(millis(500));
  int answered = 0;
  for (int i = 0; i < 10; ++i) {
    c.engine(4).submit_query(Command::get("k"), QueryMode::kStrict,
                             [&](const Reply&) { ++answered; });
  }
  c.run_for(millis(500));
  EXPECT_EQ(answered, 0);
  c.heal();
  c.run_for(seconds(2));
  EXPECT_EQ(answered, 10);
}

TEST(CoreEdge, GreenActionAtOutOfRange) {
  // Announcements off: the probe below wants position 1 still untrimmed,
  // and the periodic token would advance the white line past it.
  ClusterOptions o = small(3);
  o.node.engine.announce_interval = SimDuration{0};
  EngineCluster c(o);
  c.run_for(seconds(1));
  c.engine(0).submit({}, Command::put("k", "v"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(300));
  EXPECT_EQ(c.engine(0).green_action_at(0).server_id, kNoNode);
  EXPECT_EQ(c.engine(0).green_action_at(99).server_id, kNoNode);
  EXPECT_EQ(c.engine(0).green_action_at(1).server_id, 0);
}

TEST(CoreEdge, RemoveReplicaOfUnknownIdIsHarmless) {
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  c.engine(0).remove_replica(99);  // not a member
  c.run_for(millis(500));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.engine(1).server_set(), (std::vector<NodeId>{0, 1, 2}));
}

TEST(CoreEdge, CommutativeRepliesEvenWithoutQuorumForever) {
  // A component that can never gain quorum still acknowledges commutative
  // updates — the §6 availability guarantee doesn't depend on the primary.
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  c.partition({{3, 4}, {0, 1, 2}});
  c.run_for(millis(500));
  int acked = 0;
  for (int i = 0; i < 5; ++i) {
    c.engine(3).submit({}, Command::add("stock", 1), 1, Semantics::kCommutative,
                       [&](const Reply&) { ++acked; });
    c.run_for(millis(50));
  }
  EXPECT_EQ(acked, 5);
  EXPECT_EQ(c.engine(3).green_count(), 0);  // still no global order
}

TEST(CoreEdge, WhiteTrimDisabledKeepsBodies) {
  ClusterOptions o = small(3);
  o.node.engine.white_trim = false;
  EngineCluster c(o);
  c.run_for(seconds(1));
  for (int i = 0; i < 20; ++i) {
    for (NodeId n = 0; n < 3; ++n) {
      c.engine(n).submit({}, Command::add("n", 1), 1, Semantics::kStrict, nullptr);
    }
    c.run_for(millis(15));
  }
  c.run_for(millis(500));
  EXPECT_EQ(c.engine(0).stats().actions_white_trimmed, 0u);
  // Every green position still has a retrievable id.
  for (std::int64_t p = 1; p <= c.engine(0).green_count(); ++p) {
    EXPECT_NE(c.engine(0).green_action_at(p).server_id, kNoNode);
  }
}

}  // namespace
}  // namespace tordb::core
