// Regression tests for specific group-communication defects found during
// development, plus coverage of the group-activity (dormant node) feature
// and channel demultiplexing.
#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "gc_harness.h"

namespace tordb::gc {
namespace {

using tordb::gc::testing::GcCluster;
using tordb::gc::testing::parse_payload;

TEST(GcRegression, AckTimerSurvivesConfigurationChange) {
  // Regression: a coalesced ack timer armed in the old configuration left
  // `ack_scheduled_` set across an install, so the first message of the new
  // configuration was never acknowledged and safe delivery stalled at the
  // sequencer while other members (who learned the sequencer's receipt)
  // delivered safe — a trichotomy violation.
  //
  // Reproduction: traffic right before a partition arms ack timers; the
  // surviving pair installs a new configuration; one more safe message must
  // be delivered safe BY EVERY member of the new configuration.
  GcCluster c(4);
  c.run_for(millis(500));
  for (std::int64_t k = 1; k <= 10; ++k) c.multicast(0, k);
  c.net().set_components({{0, 1}, {2, 3}});
  c.run_for(seconds(1));
  // k10 was resent in the {0,1} configuration; both members must have
  // delivered it (node 0 is the sequencer and needs node 1's ack).
  for (NodeId n : {0, 1}) {
    bool got = false;
    for (const auto& d : c.record(n).deliveries) {
      if (parse_payload(d.payload) == std::make_pair(NodeId{0}, std::int64_t{10})) got = true;
    }
    EXPECT_TRUE(got) << "node " << n << " missed the resent message";
  }
  c.check_all_invariants();
}

TEST(GcRegression, ResendAfterInstallDoesNotDuplicateForSender) {
  GcCluster c(3);
  c.run_for(millis(500));
  for (std::int64_t k = 1; k <= 5; ++k) c.multicast(1, k);
  c.net().set_components({{0, 1}, {2}});
  c.run_for(seconds(1));
  c.net().heal();
  c.run_for(seconds(1));
  // Node 1 never sees its own payload twice.
  std::map<std::int64_t, int> seen;
  for (const auto& d : c.record(1).deliveries) {
    auto [s, k] = parse_payload(d.payload);
    if (s == 1) ++seen[k];
  }
  for (const auto& [k, count] : seen) {
    EXPECT_EQ(count, 1) << "payload " << k << " delivered " << count << " times at its sender";
  }
}

TEST(GcRegression, GroupInactiveNodeExcludedFromMembership) {
  GcCluster c(4);
  c.net().set_group_active(3, false);
  c.run_for(seconds(1));
  EXPECT_TRUE(c.converged({0, 1, 2}));
  EXPECT_FALSE(c.gc(3).config().contains(0));
}

TEST(GcRegression, GroupActivationTriggersMembership) {
  GcCluster c(3);
  c.net().set_group_active(2, false);
  c.run_for(seconds(1));
  ASSERT_TRUE(c.converged({0, 1}));
  c.net().set_group_active(2, true);
  c.run_for(seconds(1));
  EXPECT_TRUE(c.converged({0, 1, 2}));
}

TEST(GcRegression, DirectChannelDoesNotDisturbGc) {
  // Traffic on the direct channel must not reach the GC handler.
  GcCluster c(3);
  c.run_for(millis(500));
  int direct_got = 0;
  c.net().set_packet_handler(
      1, [&](NodeId, const Bytes&) { ++direct_got; }, Channel::kDirect);
  c.net().send(0, 1, Bytes{0xff, 0xee}, Channel::kDirect);
  c.run_for(millis(50));
  EXPECT_EQ(direct_got, 1);
  // GC is still fully functional.
  c.multicast(2, 1);
  c.run_for(millis(100));
  EXPECT_EQ(c.record(0).deliveries.size(), 1u);
  c.check_all_invariants();
}

TEST(GcRegression, RapidFlipFlopConverges) {
  // Regression guard for the coordinator-contention rules: alternate the
  // topology faster than gathers complete, many times, and require
  // convergence plus invariants afterwards.
  GcCluster c(5, 33);
  c.run_for(millis(300));
  for (int i = 0; i < 12; ++i) {
    if (i % 2 == 0) {
      c.net().set_components({{0, 2, 4}, {1, 3}});
    } else {
      c.net().set_components({{0, 1}, {2, 3, 4}});
    }
    c.multicast(0, 100 + i);
    c.run_for(millis(8));  // shorter than a full gather
  }
  c.net().heal();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged({0, 1, 2, 3, 4}));
  c.check_all_invariants();
}

TEST(GcRegression, CoordinatorCrashMidGatherRecovers) {
  GcCluster c(4, 5);
  c.run_for(millis(500));
  // Trigger a gather, then immediately crash the coordinator (node 0).
  c.net().set_components({{0, 1, 2}, {3}});
  c.run_for(millis(2));  // gather starting
  c.crash(0);
  c.run_for(seconds(1));
  EXPECT_TRUE(c.converged({1, 2}));
  c.check_all_invariants();
}

TEST(GcRegression, StaleInstallFromOldTokenIgnored) {
  // Chain of topology changes: any INSTALL from a superseded token must not
  // corrupt the newer membership. Covered behaviourally: after the chain,
  // members are operational in one config and invariants hold.
  GcCluster c(4, 11);
  c.run_for(millis(400));
  c.net().set_components({{0, 1, 2, 3}});
  c.run_for(millis(5));
  c.net().set_components({{0, 1}, {2, 3}});
  c.run_for(millis(5));
  c.net().heal();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged({0, 1, 2, 3}));
  c.check_all_invariants();
}

TEST(GcRegression, BufferPruningStillServesRetransmission) {
  // Stability pruning drops globally-acked messages; a straggler that later
  // needs retransmission must still be servable (messages it lacks are by
  // definition not globally acked). Long run with periodic partitions.
  GcCluster c(3, 21);
  c.run_for(millis(500));
  std::int64_t k = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 30; ++i) {
      c.multicast(0, ++k);
      c.run_for(millis(2));
    }
    c.net().set_components({{0, 1}, {2}});
    for (int i = 0; i < 10; ++i) {
      c.multicast(1, ++k);
      c.run_for(millis(2));
    }
    c.net().heal();
    c.run_for(millis(400));
  }
  c.check_all_invariants();
  // All three members end in the same configuration with the same deliveries
  // in the final config.
  EXPECT_TRUE(c.converged({0, 1, 2}));
}

TEST(GcRegression, SafeServiceBlocksLaterAgreedUntilStable) {
  // Total order must hold across service types: an agreed message ordered
  // after a safe message is not delivered before it.
  GcCluster c(3);
  c.run_for(millis(500));
  c.multicast(0, 1, Service::kSafe);
  c.multicast(0, 2, Service::kAgreed);
  c.run_for(millis(200));
  for (NodeId n = 0; n < 3; ++n) {
    const auto& ds = c.record(n).deliveries;
    ASSERT_EQ(ds.size(), 2u);
    EXPECT_EQ(parse_payload(ds[0].payload).second, 1);
    EXPECT_EQ(parse_payload(ds[1].payload).second, 2);
  }
}

}  // namespace
}  // namespace tordb::gc
