// Crash / recovery behaviour: Appendix A Recover, the vulnerable flag, and
// the stable-storage interplay (paper §5).
#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "workload/cluster.h"

namespace tordb::core {
namespace {

using db::Command;
using workload::ClusterOptions;
using workload::EngineCluster;

ClusterOptions small(int n, std::uint64_t seed = 1) {
  ClusterOptions o;
  o.replicas = n;
  o.seed = seed;
  return o;
}

TEST(CoreFault, CrashedReplicaRecoversAndCatchesUp) {
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  c.engine(0).submit({}, Command::put("a", "1"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(300));
  c.crash(4);
  c.run_for(millis(500));
  ASSERT_TRUE(c.converged_primary({0, 1, 2, 3}));
  c.engine(0).submit({}, Command::put("b", "2"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(300));
  c.recover(4);
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.engine(4).database().get("a"), "1");
  EXPECT_EQ(c.engine(4).database().get("b"), "2");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreFault, OngoingQueueSurvivesCrash) {
  // A.13: an action forced to the ongoingQueue before the crash is re-marked
  // red on recovery and eventually ordered, even though it never reached the
  // group communication.
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  // Submit and crash immediately after the forced write completes but
  // before the multicast round trips (the force takes 8ms; ordering takes
  // several more).
  c.engine(2).submit({}, Command::put("survivor", "yes"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(9));  // force done, action handed to GC, not yet ordered
  c.crash(2);
  c.run_for(millis(500));
  c.recover(2);
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(c.engine(i).database().get("survivor"), "yes") << "node " << i;
  }
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreFault, ActionNotForcedIsLostButConsistent) {
  // Crash before the forced write completes: the action is lost (the client
  // was never answered), and the system stays consistent.
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  bool replied = false;
  c.engine(2).submit({}, Command::put("lost", "yes"), 1, Semantics::kStrict,
                     [&](const Reply&) { replied = true; });
  c.run_for(millis(2));  // force (8ms) still in flight
  c.crash(2);
  c.run_for(millis(500));
  c.recover(2);
  c.run_for(seconds(2));
  EXPECT_FALSE(replied);
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.engine(0).database().get("lost"), "");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreFault, RecoveredPrimaryMemberRejoinsConsistently) {
  // A server that crashes as a member of an installed primary recovers with
  // its vulnerable record intact. Because it had received every CPC of the
  // attempt, ComputeKnowledge rule 4 (complete bits) resolves the attempt at
  // its next exchange — but isolated it still lacks a majority, so no solo
  // primary forms.
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  ASSERT_TRUE(c.converged_primary(c.all_ids()));
  ASSERT_TRUE(c.engine(0).vulnerable().valid);  // vulnerable while in prim
  c.crash(0);
  c.run_for(millis(200));
  c.partition({{0}, {1, 2}});
  c.recover(0);
  c.run_for(seconds(1));
  EXPECT_TRUE(c.node(0).running());
  EXPECT_EQ(c.engine(0).state(), EngineState::kNonPrim);
  // The other two carry on as the primary.
  EXPECT_TRUE(c.converged_primary({1, 2}));
  c.heal();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreFault, CrashWhileConstructingBlocksSoloQuorum) {
  // The vulnerable flag's raison d'être (paper §5): a server that agreed to
  // form a primary component (sent its CPC) and crashed before learning the
  // outcome must not act on that attempt after recovery. With weights
  // {3,1,1}, node 0 alone *is* a weighted majority — only the vulnerable
  // flag stops it from forming a primary on its own.
  ClusterOptions o = small(3);
  o.node.engine.weights = {{0, 3}, {1, 1}, {2, 1}};
  EngineCluster c(o);
  c.run_for(seconds(1));
  ASSERT_TRUE(c.converged_primary(c.all_ids()));

  // Force a view change and catch node 0 in the Construct state *after* it
  // sent its CPC (the vulnerable record is forced to disk first; crashing
  // before the CPC leaves no obligation).
  const auto cpc_before = c.engine(0).stats().cpc_sent;
  c.partition({{0, 1}, {2}});
  bool caught = false;
  for (int i = 0; i < 4000; ++i) {
    c.run_for(micros(250));
    if (c.engine(0).state() == EngineState::kConstruct &&
        c.engine(0).stats().cpc_sent > cpc_before) {
      caught = true;
      break;
    }
  }
  ASSERT_TRUE(caught) << "never observed Construct after CPC send";
  ASSERT_TRUE(c.engine(0).vulnerable().valid);
  c.crash(0);
  c.run_for(millis(200));
  c.partition({{0}, {1, 2}});
  c.recover(0);
  c.run_for(seconds(2));
  // Solo it has the weighted majority, but the unresolved attempt keeps it
  // vulnerable: no primary may form.
  ASSERT_TRUE(c.node(0).running());
  EXPECT_TRUE(c.engine(0).vulnerable().valid);
  EXPECT_EQ(c.engine(0).state(), EngineState::kNonPrim);
  // Merging back resolves the attempt through the exchange and the system
  // reforms a single consistent primary.
  c.heal();
  c.run_for(seconds(3));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreFault, CleanCrashInPrimaryAllowsSoloWeightedQuorum) {
  // Contrast with the above: a member that crashed *after* the primary was
  // fully installed (all CPC bits set) self-resolves its attempt on
  // recovery, and with dominant weight may continue alone.
  ClusterOptions o = small(3);
  o.node.engine.weights = {{0, 3}, {1, 1}, {2, 1}};
  EngineCluster c(o);
  c.run_for(seconds(1));
  ASSERT_TRUE(c.converged_primary(c.all_ids()));
  c.crash(0);
  c.run_for(millis(200));
  c.partition({{0}, {1, 2}});
  c.recover(0);
  c.run_for(seconds(2));
  EXPECT_EQ(c.engine(0).state(), EngineState::kRegPrim);
  // {1,2} has weight 2 of 5: they must NOT be a second primary.
  EXPECT_EQ(c.engine(1).state(), EngineState::kNonPrim);
  EXPECT_EQ(c.engine(2).state(), EngineState::kNonPrim);
  c.heal();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreFault, AllPrimaryMembersCrashAndRecoverConsistently) {
  // Paper §5: "If all the servers in the primary component crash ... they
  // all need to exchange information with each other before continuing."
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  for (NodeId i = 0; i < 3; ++i) {
    c.engine(i).submit({}, Command::add("n", 1), 1, Semantics::kStrict, nullptr);
  }
  c.run_for(millis(300));
  for (NodeId i = 0; i < 3; ++i) c.crash(i);
  c.run_for(millis(500));
  for (NodeId i = 0; i < 3; ++i) c.recover(i);
  c.run_for(seconds(3));
  // All three recovered vulnerable to the same attempt; their collective
  // bits cover every CPC, so ComputeKnowledge resolves the attempt and a
  // new primary forms.
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.engine(0).database().get("n"), "3");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreFault, CrashDuringPartitionRecoversIntoMinority) {
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3, 4}});
  c.run_for(millis(500));
  c.crash(3);
  c.run_for(millis(300));
  c.recover(3);
  c.run_for(seconds(1));
  // Still a minority; no primary there, but it participates again.
  EXPECT_EQ(c.engine(3).state(), EngineState::kNonPrim);
  c.heal();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreFault, SequentialCrashesOfEveryNode) {
  EngineCluster c(small(4, 9));
  c.run_for(seconds(1));
  std::int64_t expected = 0;
  for (NodeId victim = 0; victim < 4; ++victim) {
    c.engine((victim + 1) % 4).submit({}, Command::add("n", 1), 1, Semantics::kStrict, nullptr);
    ++expected;
    c.run_for(millis(300));
    c.crash(victim);
    c.run_for(millis(500));
    c.recover(victim);
    c.run_for(seconds(1));
  }
  c.run_for(seconds(1));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.engine(0).database().get("n"), std::to_string(expected));
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreFault, DelayedWritesLoseTailButStayConsistent) {
  // Figure 5(b)'s trade-off made concrete: with delayed writes a crash can
  // forget acknowledged actions locally; recovery + exchange still yields a
  // consistent (prefix-equal) system state.
  ClusterOptions o = small(3);
  o.node.storage.mode = SyncMode::kDelayed;
  EngineCluster c(o);
  c.run_for(seconds(1));
  for (int i = 0; i < 5; ++i) {
    c.engine(0).submit({}, Command::add("n", 1), 1, Semantics::kStrict, nullptr);
    c.run_for(millis(2));
  }
  c.crash(0);
  c.run_for(millis(500));
  c.recover(0);
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreFault, StorageCompactionPreservesRecovery) {
  ClusterOptions o = small(3);
  o.node.engine.compact_every_greens = 20;  // compact aggressively
  EngineCluster c(o);
  c.run_for(seconds(1));
  for (int round = 0; round < 60; ++round) {
    c.engine(0).submit({}, Command::add("n", 1), 1, Semantics::kStrict, nullptr);
    c.run_for(millis(4));
  }
  c.run_for(millis(500));
  ASSERT_EQ(c.engine(1).green_count(), 60);
  c.crash(1);
  c.run_for(millis(300));
  c.recover(1);
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.engine(1).database().get("n"), "60");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

}  // namespace
}  // namespace tordb::core
