// Direct unit tests of the engine's crash-recovery constructor against
// handcrafted stable-storage logs (Appendix A, Recover): record ordering,
// duplicates, compaction snapshots, and the ongoing-queue replay rule.
#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "core/replication_engine.h"
#include "db/database.h"

namespace tordb::core {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : sim_(1), net_(sim_), storage_(sim_) {
    for (NodeId n : {0, 1, 2}) net_.add_node(n);
  }

  Action make_action(NodeId creator, std::int64_t index, db::Command update,
                     ActionType type = ActionType::kUpdate, NodeId subject = kNoNode) {
    Action a;
    a.type = type;
    a.id = ActionId{creator, index};
    a.update = std::move(update);
    a.subject = subject;
    return a;
  }

  void force_all() {
    bool done = false;
    storage_.sync([&] { done = true; });
    sim_.run();
    ASSERT_TRUE(done);
  }

  std::unique_ptr<ReplicationEngine> recover() {
    return std::make_unique<ReplicationEngine>(net_, storage_, 0,
                                               ReplicationEngine::RecoverTag{},
                                               std::vector<NodeId>{0, 1, 2});
  }

  Simulator sim_;
  Network net_;
  StableStorage storage_;
};

TEST_F(RecoveryTest, EmptyLogFallsBackToInitialServers) {
  auto e = recover();
  EXPECT_EQ(e->state(), EngineState::kNonPrim);
  EXPECT_EQ(e->green_count(), 0);
  EXPECT_EQ(e->server_set(), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(e->prim_component().servers, (std::vector<NodeId>{0, 1, 2}));
}

TEST_F(RecoveryTest, GreenRecordsRebuildDatabaseInOrder) {
  storage_.append(encode_log_green(1, make_action(1, 1, db::Command::put("k", "a"))));
  storage_.append(encode_log_green(2, make_action(2, 1, db::Command::append("k", "b"))));
  storage_.append(encode_log_green(3, make_action(1, 2, db::Command::append("k", "c"))));
  force_all();
  auto e = recover();
  EXPECT_EQ(e->green_count(), 3);
  EXPECT_EQ(e->database().get("k"), "abc");
  EXPECT_EQ(e->green_action_at(2), (ActionId{2, 1}));
}

TEST_F(RecoveryTest, OutOfOrderGreenRecordIgnored) {
  storage_.append(encode_log_green(1, make_action(1, 1, db::Command::put("k", "a"))));
  storage_.append(encode_log_green(5, make_action(1, 2, db::Command::put("k", "GAP"))));
  force_all();
  auto e = recover();
  EXPECT_EQ(e->green_count(), 1);
  EXPECT_EQ(e->database().get("k"), "a");
}

TEST_F(RecoveryTest, DuplicateGreenRecordIgnored) {
  const Action a = make_action(1, 1, db::Command::add("n", 1));
  storage_.append(encode_log_green(1, a));
  storage_.append(encode_log_green(1, a));
  force_all();
  auto e = recover();
  EXPECT_EQ(e->green_count(), 1);
  EXPECT_EQ(e->database().get("n"), "1");
}

TEST_F(RecoveryTest, RedRecordsRebuildRedQueue) {
  storage_.append(encode_log_red(make_action(2, 1, db::Command::put("r", "1"))));
  storage_.append(encode_log_red(make_action(2, 2, db::Command::put("r", "2"))));
  force_all();
  auto e = recover();
  EXPECT_EQ(e->green_count(), 0);
  EXPECT_EQ(e->red_count(), 2u);
  EXPECT_EQ(e->database().get("r"), "");           // reds not green-applied
  EXPECT_EQ(e->dirty_database().get("r"), "2");    // but visible dirty
}

TEST_F(RecoveryTest, OngoingBeyondRedCutIsReMarkedRed) {
  // A.13: an own action that was forced but never ordered comes back red.
  storage_.append(encode_log_ongoing(make_action(0, 1, db::Command::put("mine", "yes"))));
  force_all();
  auto e = recover();
  EXPECT_EQ(e->red_count(), 1u);
  EXPECT_EQ(e->dirty_database().get("mine"), "yes");
}

TEST_F(RecoveryTest, OngoingCoveredByGreenIsNotDuplicated) {
  const Action a = make_action(0, 1, db::Command::add("n", 5));
  storage_.append(encode_log_ongoing(a));
  storage_.append(encode_log_green(1, a));
  force_all();
  auto e = recover();
  EXPECT_EQ(e->green_count(), 1);
  EXPECT_EQ(e->red_count(), 0u);
  EXPECT_EQ(e->database().get("n"), "5");
}

TEST_F(RecoveryTest, MetaRecordRestoresMembershipAndVulnerability) {
  MetaRecord m;
  m.server_set = {0, 1};
  m.prim = PrimComponent{4, 2, {0, 1}};
  m.attempt_index = 2;
  m.vulnerable.valid = true;
  m.vulnerable.prim_index = 4;
  m.vulnerable.attempt_index = 2;
  m.vulnerable.set = {0, 1};
  m.vulnerable.bits = {true, false};
  m.green_lines = {{0, 7}, {1, 6}};
  m.gc_counter = 12;
  storage_.append(encode_log_meta(m));
  force_all();
  auto e = recover();
  EXPECT_EQ(e->server_set(), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(e->prim_component().prim_index, 4);
  EXPECT_TRUE(e->vulnerable().valid);
  EXPECT_EQ(e->vulnerable().bits, (std::vector<bool>{true, false}));
}

TEST_F(RecoveryTest, SnapshotRecordResetsThenTailExtends) {
  // Compaction snapshot at green 10, followed by two more greens.
  db::Database db;
  db.apply(db::Command::put("base", "state"));
  DbSnapshotRecord snap;
  snap.db_snapshot = db.snapshot();
  snap.green_count = 10;
  snap.green_red_cut = {{1, 6}, {2, 4}};
  snap.meta.server_set = {0, 1, 2};
  snap.meta.prim = PrimComponent{3, 1, {0, 1, 2}};
  snap.red_actions = {make_action(2, 5, db::Command::put("red", "tail"))};
  storage_.append(encode_log_db_snapshot(snap));
  storage_.append(encode_log_green(11, make_action(1, 7, db::Command::put("after", "snap"))));
  force_all();
  auto e = recover();
  EXPECT_EQ(e->green_count(), 11);
  EXPECT_EQ(e->database().get("base"), "state");
  EXPECT_EQ(e->database().get("after"), "snap");
  EXPECT_EQ(e->red_count(), 1u);
  EXPECT_EQ(e->white_line(), 0);  // green lines of others unknown
  // Positions at or below the snapshot have no bodies.
  EXPECT_EQ(e->green_action_at(10).server_id, kNoNode);
  EXPECT_EQ(e->green_action_at(11), (ActionId{1, 7}));
}

TEST_F(RecoveryTest, GreenJoinRecordExtendsServerSet) {
  storage_.append(
      encode_log_green(1, make_action(0, 1, {}, ActionType::kPersistentJoin, 7)));
  force_all();
  auto e = recover();
  EXPECT_EQ(e->server_set(), (std::vector<NodeId>{0, 1, 2, 7}));
}

TEST_F(RecoveryTest, GreenLeaveRecordShrinksServerSetAndVotes) {
  storage_.append(
      encode_log_green(1, make_action(0, 1, {}, ActionType::kPersistentLeave, 2)));
  force_all();
  auto e = recover();
  EXPECT_EQ(e->server_set(), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(e->prim_component().servers, (std::vector<NodeId>{0, 1}));
}

TEST_F(RecoveryTest, VolatileTailIsInvisible) {
  storage_.append(encode_log_green(1, make_action(1, 1, db::Command::put("k", "durable"))));
  force_all();
  storage_.append(encode_log_green(2, make_action(1, 2, db::Command::put("k", "volatile"))));
  storage_.crash();  // the second record was never forced
  auto e = recover();
  EXPECT_EQ(e->green_count(), 1);
  EXPECT_EQ(e->database().get("k"), "durable");
}

}  // namespace
}  // namespace tordb::core
