// Online reconfiguration (paper §5.1 / §5.2): PERSISTENT_JOIN with snapshot
// transfer and representative fail-over, PERSISTENT_LEAVE, administrative
// removal, and the dynamic safety theorems.
#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "workload/cluster.h"

namespace tordb::core {
namespace {

using db::Command;
using workload::ClusterOptions;
using workload::EngineCluster;

ClusterOptions small(int n, std::uint64_t seed = 1) {
  ClusterOptions o;
  o.replicas = n;
  o.seed = seed;
  return o;
}

TEST(CoreDynamic, JoinerReceivesSnapshotAndParticipates) {
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  c.engine(0).submit({}, Command::put("history", "before-join"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(300));

  auto& joiner = c.add_dormant(3);
  bool joined = false;
  joiner.join_via({0}, [&] { joined = true; });
  c.run_for(seconds(2));
  ASSERT_TRUE(joined);
  // The joiner inherited the green prefix (Theorem 2: "or it inherited a
  // database state which incorporated the effect of these actions").
  EXPECT_EQ(joiner.engine().database().get("history"), "before-join");
  EXPECT_TRUE(c.converged_primary({0, 1, 2, 3}));
  // And it is now in everyone's replica set.
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::count(c.engine(i).server_set().begin(), c.engine(i).server_set().end(), 3));
  }
}

TEST(CoreDynamic, JoinerSeesNewActionsAfterJoin) {
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  auto& joiner = c.add_dormant(3);
  joiner.join_via({1});
  c.run_for(seconds(2));
  ASSERT_TRUE(joiner.running());
  c.engine(0).submit({}, Command::put("after", "join"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(500));
  EXPECT_EQ(joiner.engine().database().get("after"), "join");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreDynamic, JoinerCountsTowardQuorumAfterJoining) {
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  auto& joiner = c.add_dormant(3);
  joiner.join_via({0});
  c.run_for(seconds(2));
  ASSERT_TRUE(c.converged_primary({0, 1, 2, 3}));
  // After the 4-member primary installs, a 3-of-4 component keeps quorum.
  c.partition({{0, 1, 3}, {2}});
  c.run_for(seconds(1));
  EXPECT_TRUE(c.converged_primary({0, 1, 3}));
}

TEST(CoreDynamic, RepresentativeFailoverDuringJoin) {
  EngineCluster c(small(4));
  c.run_for(seconds(1));
  auto& joiner = c.add_dormant(4);
  // First chosen representative crashes before it can announce/transfer.
  c.crash(0);
  joiner.join_via({0, 1});  // §5.2: reconnect to a different member
  c.run_for(seconds(3));
  EXPECT_TRUE(joiner.running());
  EXPECT_TRUE(c.converged_primary({1, 2, 3, 4}));
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreDynamic, JoinViaMinorityCompletesAfterMerge) {
  // §5.1: joining replicas may be connected to non-primary components; the
  // announcement becomes green only once the representative's component
  // merges with the primary, and the transfer then completes.
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3, 4}});
  c.run_for(millis(500));
  auto& joiner = c.add_dormant(5);
  c.partition({{0, 1, 2}, {3, 4, 5}});  // joiner's link reaches the minority
  joiner.join_via({4});
  c.run_for(seconds(1));
  EXPECT_FALSE(joiner.running());  // join is still red in the minority
  c.heal();
  c.run_for(seconds(3));
  EXPECT_TRUE(joiner.running());
  EXPECT_TRUE(c.converged_primary({0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreDynamic, LeaveShrinksReplicaSetEverywhere) {
  EngineCluster c(small(4));
  c.run_for(seconds(1));
  bool left = false;
  c.engine(3).request_leave();
  c.run_for(seconds(1));
  left = c.node(3).has_left();
  EXPECT_TRUE(left);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(c.engine(i).server_set(), (std::vector<NodeId>{0, 1, 2}));
  }
  // The remaining three still replicate.
  c.engine(0).submit({}, Command::put("post-leave", "ok"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(500));
  EXPECT_EQ(c.engine(2).database().get("post-leave"), "ok");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreDynamic, AdministrativeRemovalOfDeadReplica) {
  // §5.1: "The PERSISTENT_LEAVE message can also be administratively
  // inserted ... to signal the permanent removal, due to failure, of one of
  // the replicas."
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  c.crash(4);  // permanent
  c.run_for(millis(500));
  ASSERT_TRUE(c.converged_primary({0, 1, 2, 3}));
  c.engine(0).remove_replica(4);
  c.run_for(millis(500));
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(c.engine(i).server_set(), (std::vector<NodeId>{0, 1, 2, 3}));
  }
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreDynamic, JoinLeaveChurn) {
  EngineCluster c(small(3, 17));
  c.run_for(seconds(1));
  auto& j3 = c.add_dormant(3);
  j3.join_via({0});
  c.run_for(seconds(2));
  ASSERT_TRUE(j3.running());
  auto& j4 = c.add_dormant(4);
  j4.join_via({3});  // join via the previous joiner
  c.run_for(seconds(2));
  ASSERT_TRUE(j4.running());
  c.engine(1).request_leave();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.node(1).has_left());
  EXPECT_TRUE(c.converged_primary({0, 2, 3, 4}));
  c.engine(0).submit({}, Command::put("final", "state"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(500));
  EXPECT_EQ(c.engine(4).database().get("final"), "state");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreDynamic, JoinerCrashAndRecovery) {
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  auto& joiner = c.add_dormant(3);
  joiner.join_via({0});
  c.run_for(seconds(2));
  ASSERT_TRUE(joiner.running());
  c.engine(0).submit({}, Command::put("x", "1"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(500));
  // The joiner persisted its inherited state; crash + recovery works like
  // any other member.
  c.crash(3);
  c.run_for(millis(500));
  c.engine(0).submit({}, Command::put("y", "2"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(300));
  c.recover(3);
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary({0, 1, 2, 3}));
  EXPECT_EQ(c.engine(3).database().get("x"), "1");
  EXPECT_EQ(c.engine(3).database().get("y"), "2");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreDynamic, StragglerCatchesUpFromJoinerViaStateTransfer) {
  // A member that fell far behind merges with a component whose most
  // updated member is a snapshot-based joiner holding no action bodies: the
  // exchange falls back to a full state transfer (catch-up).
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  c.partition({{0, 1}, {2}});  // node 2 falls behind
  c.run_for(millis(500));
  for (int i = 0; i < 10; ++i) {
    c.engine(0).submit({}, Command::add("n", 1), 1, Semantics::kStrict, nullptr);
    c.run_for(millis(30));
  }
  auto& joiner = c.add_dormant(3);
  c.partition({{0, 1, 3}, {2}});
  joiner.join_via({0});
  c.run_for(seconds(2));
  ASSERT_TRUE(joiner.running());
  // Now isolate the joiner with the straggler only.
  c.partition({{2, 3}, {0, 1}});
  c.run_for(seconds(2));
  // Node 2 must have caught up from the joiner's snapshot (no bodies).
  EXPECT_EQ(c.engine(2).green_count(), joiner.engine().green_count());
  EXPECT_EQ(c.engine(2).db_digest(), joiner.engine().db_digest());
  c.heal();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary({0, 1, 2, 3}));
  EXPECT_EQ(c.check_all(), std::nullopt);
}


TEST(CoreDynamic, LeaveOfPrimaryMemberDoesNotBlockQuorum) {
  // Regression (found by the churn property tests): the last installed
  // primary was {0,1}; node 1 then permanently left. If the leaver kept
  // counting in the dynamic-linear-voting denominator, no surviving set
  // could ever reach a majority of {0,1} again and the system would block —
  // the very failure §5.1 says permanent removal exists to prevent.
  EngineCluster c(small(5, 31));
  c.run_for(seconds(1));
  // Shrink the primary to {0,1} via successive minority splits.
  c.partition({{0, 1, 2}, {3, 4}});
  c.run_for(seconds(1));
  ASSERT_TRUE(c.converged_primary({0, 1, 2}));
  c.partition({{0, 1}, {2}, {3, 4}});
  c.run_for(seconds(1));
  ASSERT_TRUE(c.converged_primary({0, 1}));
  // Node 1 leaves for good (ordered inside the {0,1} primary).
  c.engine(1).request_leave();
  c.run_for(seconds(1));
  ASSERT_TRUE(c.node(1).has_left());
  // Node 0 alone is now the whole voting set and keeps serving...
  bool replied = false;
  c.engine(0).submit({}, Command::put("after-leave", "ok"), 1, Semantics::kStrict,
                     [&](const Reply&) { replied = true; });
  c.run_for(seconds(1));
  EXPECT_TRUE(replied);
  // ...and after the merge the whole system recovers a common primary.
  c.heal();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary({0, 2, 3, 4}));
  EXPECT_EQ(c.engine(4).database().get("after-leave"), "ok");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreDynamic, LeaveLearnedThroughExchangeAdjustsQuorum) {
  // The same adjustment must survive ComputeKnowledge: members that learn
  // the leave only through the exchange retransmission (their state
  // messages predate it) still converge on the reduced voting set.
  EngineCluster c(small(4, 37));
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3}});
  c.run_for(seconds(1));
  ASSERT_TRUE(c.converged_primary({0, 1, 2}));
  c.engine(2).request_leave();
  c.run_for(seconds(1));
  ASSERT_TRUE(c.node(2).has_left());
  // Node 3 learns the leave only via the merge exchange.
  c.heal();
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary({0, 1, 3}));
  // And the now 3-member lineage {0,1} majority still rules: {0,3} without
  // 1 cannot be primary only if it lacks the majority of the last install.
  EXPECT_EQ(c.check_all(), std::nullopt);
}

}  // namespace
}  // namespace tordb::core
