// Force-enable the online safety checker (src/obs) for every cluster the
// including test binary builds — equivalent to running under
// TORDB_OBS_CHECK=1. Included by all core_* and gc_* suites so each run
// also verifies the paper's global invariants live, event by event, not
// just at the end-state assertions.
#pragma once

#include "obs/trace.h"

namespace tordb::obs::testing {

inline const bool kCheckerForced = [] {
  force_check_for_tests();
  return true;
}();

}  // namespace tordb::obs::testing
