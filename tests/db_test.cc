#include <gtest/gtest.h>

#include "db/database.h"

namespace tordb::db {
namespace {

TEST(Database, PutAndGet) {
  Database d;
  d.apply(Command::put("a", "1"));
  EXPECT_EQ(d.get("a"), "1");
  EXPECT_EQ(d.get("missing"), "");
  EXPECT_EQ(d.version(), 1);
}

TEST(Database, AddIsNumeric) {
  Database d;
  d.apply(Command::add("n", 5));
  d.apply(Command::add("n", -2));
  EXPECT_EQ(d.get("n"), "3");
}

TEST(Database, AppendConcatenates) {
  Database d;
  d.apply(Command::append("s", "ab"));
  d.apply(Command::append("s", "cd"));
  EXPECT_EQ(d.get("s"), "abcd");
}

TEST(Database, GetReturnsReads) {
  Database d;
  d.apply(Command::put("a", "x"));
  auto res = d.apply(Command::get("a"));
  ASSERT_EQ(res.reads.size(), 1u);
  EXPECT_EQ(res.reads[0], "x");
  EXPECT_FALSE(res.aborted);
}

TEST(Database, CheckedPutAppliesWhenPreconditionHolds) {
  Database d;
  d.apply(Command::put("a", "old"));
  auto res = d.apply(Command::checked_put("a", "old", "new"));
  EXPECT_FALSE(res.aborted);
  EXPECT_EQ(d.get("a"), "new");
}

TEST(Database, CheckedPutAbortsWhenPreconditionFails) {
  // Paper §6: interactive transactions become an active action that first
  // checks the values read earlier; all replicas abort identically.
  Database d;
  d.apply(Command::put("a", "changed"));
  const std::int64_t v = d.version();
  auto res = d.apply(Command::checked_put("a", "old", "new"));
  EXPECT_TRUE(res.aborted);
  EXPECT_EQ(d.get("a"), "changed");
  EXPECT_EQ(d.version(), v);  // aborted commands do not bump the version
}

TEST(Database, AbortHasNoPartialEffects) {
  Database d;
  Command c;
  c.ops.push_back(Op{OpType::kPut, "x", "1", 0});
  c.ops.push_back(Op{OpType::kCheck, "nope", "must-be-this", 0});
  auto res = d.apply(c);
  EXPECT_TRUE(res.aborted);
  EXPECT_EQ(d.get("x"), "");  // first op not applied either
}

TEST(Database, TimestampPutKeepsNewest) {
  // Paper §6 timestamp update semantics: only the highest timestamp wins,
  // regardless of apply order, so replicas converge without ordering.
  Database a, b;
  a.apply(Command::timestamp_put("loc", "newer", 10));
  a.apply(Command::timestamp_put("loc", "older", 5));
  b.apply(Command::timestamp_put("loc", "older", 5));
  b.apply(Command::timestamp_put("loc", "newer", 10));
  EXPECT_EQ(a.get("loc"), "newer");
  EXPECT_EQ(b.get("loc"), "newer");
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Database, AddIsCommutative) {
  // Paper §6 commutative update semantics (inventory example).
  Database a, b;
  a.apply(Command::add("stock", 7));
  a.apply(Command::add("stock", -3));
  b.apply(Command::add("stock", -3));
  b.apply(Command::add("stock", 7));
  EXPECT_EQ(a.get("stock"), "4");
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Database, DeterministicAcrossReplicas) {
  Database a, b;
  std::vector<Command> cmds = {
      Command::put("k1", "v1"), Command::add("n", 3), Command::append("s", "x"),
      Command::checked_put("k1", "v1", "v2"), Command::timestamp_put("t", "late", 9)};
  for (const auto& c : cmds) {
    a.apply(c);
    b.apply(c);
  }
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.version(), b.version());
}

TEST(Database, SnapshotRestoreRoundTrip) {
  Database a;
  a.apply(Command::put("a", "1"));
  a.apply(Command::add("n", 42));
  a.apply(Command::timestamp_put("t", "v", 7));
  Database b;
  b.restore(a.snapshot());
  EXPECT_EQ(b.digest(), a.digest());
  EXPECT_EQ(b.version(), a.version());
  EXPECT_EQ(b.get("n"), "42");
  // Timestamp metadata survives the transfer.
  b.apply(Command::timestamp_put("t", "stale", 3));
  EXPECT_EQ(b.get("t"), "v");
}

TEST(Database, SnapshotOfEmpty) {
  Database a, b;
  b.apply(Command::put("junk", "x"));
  b.restore(a.snapshot());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.digest(), a.digest());
}

TEST(Database, DigestDetectsDifference) {
  Database a, b;
  a.apply(Command::put("a", "1"));
  b.apply(Command::put("a", "2"));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Database, CommandSerdeRoundTrip) {
  Command c;
  c.ops.push_back(Op{OpType::kPut, "k", "v", 0});
  c.ops.push_back(Op{OpType::kAdd, "n", "", -17});
  c.ops.push_back(Op{OpType::kCheck, "c", "expected", 0});
  c.ops.push_back(Op{OpType::kTimestampPut, "t", "x", 123});
  BufWriter w;
  c.encode(w);
  Bytes b = w.take();
  BufReader r(b);
  Command back = Command::decode(r);
  EXPECT_EQ(back.ops, c.ops);
}

TEST(Database, CloneIsIndependent) {
  Database a;
  a.apply(Command::put("a", "1"));
  Database b = a.clone();
  b.apply(Command::put("a", "2"));
  EXPECT_EQ(a.get("a"), "1");
  EXPECT_EQ(b.get("a"), "2");
}


TEST(Database, DeleteRemovesKey) {
  Database d;
  d.apply(Command::put("a", "1"));
  d.apply(Command::del("a"));
  EXPECT_EQ(d.get("a"), "");
  EXPECT_EQ(d.size(), 0u);
}

TEST(Database, DeleteMissingKeyIsNoop) {
  Database d;
  const auto before = d.digest();
  d.apply(Command::del("never-there"));
  EXPECT_EQ(d.digest(), before);
  EXPECT_EQ(d.version(), 1);  // still counts as an applied command
}

TEST(Database, DeleteAffectsDigestAndSnapshot) {
  Database a, b;
  a.apply(Command::put("k", "v"));
  b.apply(Command::put("k", "v"));
  a.apply(Command::del("k"));
  EXPECT_NE(a.digest(), b.digest());
  Database c;
  c.restore(a.snapshot());
  EXPECT_EQ(c.get("k"), "");
}

TEST(Database, DeleteInsideCheckedCommand) {
  Database d;
  d.apply(Command::put("k", "old"));
  Command c;
  c.ops.push_back(Op{OpType::kCheck, "k", "old", 0});
  c.ops.push_back(Op{OpType::kDelete, "k", "", 0});
  EXPECT_FALSE(d.apply(c).aborted);
  EXPECT_EQ(d.get("k"), "");
}

TEST(Database, InstallRangeClearsStaleRows) {
  // A former owner still holds rows the current owner deleted; the install
  // on move-back must reproduce the source range exactly, not union with
  // the stale copy. Reserved "__" keys are pinned and survive.
  Database src, dst;
  dst.apply(Command::put("a", "old"));
  dst.apply(Command::put("b", "old"));
  dst.apply(Command::put("__session/7", "9"));
  src.apply(Command::put("b", "new"));
  src.apply(Command::fence_range("", "m"));
  dst.apply(Command::install_range(src.extract_range("", "m")));
  EXPECT_EQ(dst.get("a"), "");  // deleted under the owner: not resurrected
  EXPECT_EQ(dst.get("b"), "new");
  EXPECT_EQ(dst.get("__session/7"), "9");
}

TEST(Database, InstallRangeCarvesOverlappingFence) {
  // The shard fenced ["", "m") when the whole range moved away; later only
  // the sub-range ["", "d") moves back. The install must unfence exactly
  // its own bounds: the stale wide entry may not shadow it (writes to "a"
  // aborting forever), and the remainder ["d", "m") must stay fenced.
  Database d;
  d.apply(Command::fence_range("", "m"));
  EXPECT_TRUE(d.apply(Command::put("a", "1")).fenced);
  RangeSnapshot snap;
  snap.lo = "";
  snap.hi = "d";
  snap.rows.push_back(RangeRow{"a", "2", -1});
  d.apply(Command::install_range(snap));
  EXPECT_FALSE(d.apply(Command::put("a", "3")).aborted);
  EXPECT_EQ(d.get("a"), "3");
  const auto res = d.apply(Command::put("f", "x"));
  EXPECT_TRUE(res.aborted);
  EXPECT_TRUE(res.fenced);
}

TEST(Database, FenceCarvesOverlappingInstall) {
  // The next hop fences a sub-range of a previously installed wide range:
  // the fence wins for its own keys, the rest stays writable.
  Database d;
  RangeSnapshot snap;
  snap.lo = "";
  snap.hi = "m";
  d.apply(Command::install_range(snap));
  d.apply(Command::fence_range("", "d"));
  EXPECT_TRUE(d.apply(Command::put("a", "1")).fenced);
  EXPECT_FALSE(d.apply(Command::put("f", "1")).aborted);
}

TEST(Database, UnfenceRangeRestoresWritesAndDigest) {
  Database d;
  d.apply(Command::put("a", "1"));
  Database plain = d.clone();
  d.apply(Command::fence_range("", "m"));
  EXPECT_TRUE(d.apply(Command::put("a", "2")).fenced);
  d.apply(Command::unfence_range("", "m"));
  EXPECT_FALSE(d.apply(Command::put("a", "2")).aborted);
  EXPECT_EQ(d.get("a"), "2");
  // The rollback leaves no tracked-range residue in the digest.
  plain.apply(Command::put("a", "2"));
  EXPECT_EQ(d.digest(), plain.digest());
}

}  // namespace
}  // namespace tordb::db
