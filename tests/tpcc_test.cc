// TPC-C workload subsystem (DESIGN.md §12): schema layout, determinism,
// abort-cause surfacing, and ledger consistency under churn + rebalancing
// with the online safety checker forced on (obs_enable.h).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs_enable.h"
#include "shard/directory.h"
#include "workload/sharded_cluster.h"
#include "workload/tpcc/driver.h"

namespace tordb::workload::tpcc {
namespace {

std::int64_t stored_num(ShardedCluster& cluster, const std::string& key) {
  const int shard = cluster.directory().shard_of(key);
  for (int i = 0; i < cluster.replicas_per_shard(); ++i) {
    const auto& node = cluster.node(shard, i);
    if (node.running() && !node.has_left()) {
      const std::string v = node.engine().database().get(key);
      return v.empty() ? 0 : std::stoll(v);
    }
  }
  ADD_FAILURE() << "no running replica for shard " << shard;
  return -1;
}

TEST(TpccSchema, KeysAreWarehouseContiguous) {
  // Every row of warehouse w must sort inside [prefix(w), prefix(w+1)) so a
  // range directory maps whole warehouses — the property the shardable
  // layout exists for.
  for (const int w : {0, 7, 42}) {
    const std::string lo = warehouse_prefix(w);
    const std::string hi = warehouse_prefix(w + 1);
    const std::vector<std::string> keys = {
        item_key(w, 3),       stock_key(w, 3),           warehouse_ytd_key(w),
        district_ytd_key(w, 1), district_order_count_key(w, 1),
        customer_balance_key(w, 1, 2), customer_last_order_key(w, 1, 2),
        order_key(w, 1, 5, 17), order_line_key(w, 1, 5, 17, 2), delivery_key(w, 1, 5, 17),
    };
    for (const std::string& k : keys) {
      EXPECT_GE(k, lo) << k;
      EXPECT_LT(k, hi) << k;
    }
  }
}

TEST(TpccSchema, SplitsDealContiguousBlocks) {
  for (const int warehouses : {4, 8, 10}) {
    for (const int shards : {1, 2, 4}) {
      const auto splits = warehouse_splits(warehouses, shards);
      ASSERT_EQ(static_cast<int>(splits.size()), shards - 1);
      for (std::size_t i = 1; i < splits.size(); ++i) EXPECT_LT(splits[i - 1], splits[i]);
      auto dir = shard::Directory::ranged(splits);
      if (shards == 1) dir = shard::Directory::ranged({});
      int covered = 0;
      for (int s = 0; s < shards; ++s) {
        const auto [lo, hi] = shard_warehouses(warehouses, shards, s);
        EXPECT_EQ(lo, covered);  // blocks tile [0, warehouses) in order
        covered = hi;
        for (int w = lo; w < hi; ++w) {
          if (shards > 1) {
            EXPECT_EQ(dir.shard_of(stock_key(w, 0)), s) << "w" << w;
            EXPECT_EQ(dir.shard_of(district_ytd_key(w, 0)), s) << "w" << w;
          }
        }
      }
      EXPECT_EQ(covered, warehouses);
    }
  }
}

struct RunResult {
  std::uint64_t digest = 0;
  std::uint64_t committed[kTxnTypes] = {};
  std::uint64_t aborted_check[kTxnTypes] = {};
};

RunResult run_once(std::uint64_t seed) {
  TpccOptions topt;
  topt.warehouses = 4;
  topt.clients = 6;
  topt.zipf_theta = 0.9;
  topt.remote_fraction = 0.2;
  topt.invalid_item_fraction = 0.05;
  topt.hotspot_shift_after = seconds(1);
  topt.seed = seed;

  ShardedClusterOptions options;
  options.shards = 2;
  options.replicas_per_shard = 3;
  options.seed = seed;
  options.range_splits = warehouse_splits(topt.warehouses, options.shards);
  ShardedCluster cluster(options);
  cluster.run_for(seconds(1));
  TpccDriver driver(cluster, topt);
  driver.load();
  const SimTime start = cluster.sim().now();
  driver.start(start, start + seconds(3));
  int guard = 0;
  while (!driver.idle()) {
    if (++guard > 600) {
      ADD_FAILURE() << "run did not drain";
      break;
    }
    cluster.run_for(millis(100));
  }
  RunResult out;
  out.digest = driver.state_digest();
  for (int t = 0; t < kTxnTypes; ++t) {
    out.committed[t] = driver.total(static_cast<TxnType>(t)).committed;
    out.aborted_check[t] = driver.total(static_cast<TxnType>(t)).aborted_check;
  }
  return out;
}

// Helper wrappers because ASSERT_* needs a void-returning context.
void run_once_into(std::uint64_t seed, RunResult* out) { *out = run_once(seed); }

TEST(TpccDriver, SameSeedBitIdentical) {
  RunResult a, b, c;
  run_once_into(7, &a);
  run_once_into(7, &b);
  run_once_into(8, &c);
  EXPECT_EQ(a.digest, b.digest);
  for (int t = 0; t < kTxnTypes; ++t) {
    EXPECT_EQ(a.committed[t], b.committed[t]) << to_string(static_cast<TxnType>(t));
    EXPECT_EQ(a.aborted_check[t], b.aborted_check[t]) << to_string(static_cast<TxnType>(t));
  }
  // A different seed must actually change the run (guards against a digest
  // that ignores its inputs).
  EXPECT_NE(a.digest, c.digest);
}

TEST(TpccDriver, CheckAbortsAreSurfacedAsCause) {
  // All-local orders with a heavy invalid-item rate: the aborts must be
  // classified as failed checks (the application abort), not "other", and
  // the same cause must be visible in the router's stats.
  TpccOptions topt;
  topt.warehouses = 2;
  topt.clients = 6;
  topt.remote_fraction = 0.0;
  topt.invalid_item_fraction = 0.3;

  ShardedClusterOptions options;
  options.shards = 2;
  options.replicas_per_shard = 3;
  options.range_splits = warehouse_splits(topt.warehouses, options.shards);
  ShardedCluster cluster(options);
  cluster.run_for(seconds(1));
  TpccDriver driver(cluster, topt);
  driver.load();
  const SimTime start = cluster.sim().now();
  driver.start(start, start + seconds(3));
  int guard = 0;
  while (!driver.idle()) {
    ASSERT_LT(++guard, 600);
    cluster.run_for(millis(100));
  }

  const TxnStats& no = driver.total(TxnType::kNewOrder);
  EXPECT_GT(no.aborted_check, 0u);
  EXPECT_EQ(no.aborted_other, 0u);
  EXPECT_EQ(no.aborted_fenced, 0u);
  EXPECT_GE(cluster.router().stats().aborted_checks, no.aborted_check);
  // An aborted order must leave no trace: the district order counts equal
  // the admitted ledger exactly.
  for (int w = 0; w < topt.warehouses; ++w) {
    for (int d = 0; d < topt.districts; ++d) {
      EXPECT_EQ(stored_num(cluster, district_order_count_key(w, d)),
                driver.admitted_new_orders(w, d))
          << "w" << w << "/d" << d;
    }
  }
}

TEST(TpccDriver, LedgersConsistentUnderChurnAndRebalance) {
  // Full mix with skew, a replica crash + recovery, and a fenced range move
  // of one warehouse block — all mid-run, with the safety checker live.
  // Afterwards the replicated counters must equal the driver's ledgers
  // exactly: district ytd == sum of admitted payments, district order count
  // == admitted new-orders (exactly-once sessions + commutative adds).
  TpccOptions topt;
  topt.warehouses = 4;
  topt.clients = 8;
  topt.zipf_theta = 0.9;
  topt.remote_fraction = 0.15;
  topt.invalid_item_fraction = 0.05;

  ShardedClusterOptions options;
  options.shards = 2;
  options.replicas_per_shard = 3;
  options.range_splits = warehouse_splits(topt.warehouses, options.shards);
  ShardedCluster cluster(options);
  cluster.run_for(seconds(1));
  TpccDriver driver(cluster, topt);
  driver.load();

  const SimTime start = cluster.sim().now();
  driver.start(start, start + seconds(6));
  cluster.run_for(millis(1500));
  cluster.crash(1, 0);
  cluster.run_for(millis(1500));
  cluster.recover(1, 0);
  // Carve warehouse 1 out of shard 0's block and move it to shard 1 while
  // terminals keep issuing — commands hitting the fence bounce and retry.
  ASSERT_TRUE(cluster.split_at(warehouse_prefix(1)));
  bool move_ok = false;
  ASSERT_TRUE(cluster.move_range(warehouse_prefix(1), warehouse_prefix(2), 1,
                                 [&](const shard::MoveReport& r) { move_ok = r.ok; }));
  int guard = 0;
  while (!driver.idle() || !cluster.rebalancer().idle()) {
    ASSERT_LT(++guard, 900) << "run did not drain";
    cluster.run_for(millis(100));
  }
  ASSERT_TRUE(move_ok);
  EXPECT_EQ(cluster.directory().shard_of(stock_key(1, 0)), 1);  // cutover happened

  // Let the recovered replica finish converging, then check everything.
  for (int i = 0; i < 100 && !(cluster.converged(0) && cluster.converged(1)); ++i) {
    cluster.run_for(millis(200));
  }
  EXPECT_EQ(cluster.check_all(), std::nullopt);

  std::uint64_t committed_total = 0;
  for (int t = 0; t < kTxnTypes; ++t) {
    committed_total += driver.total(static_cast<TxnType>(t)).committed;
  }
  EXPECT_GT(committed_total, 100u);
  EXPECT_GT(driver.deliveries_stamped(), 0u);
  for (int w = 0; w < topt.warehouses; ++w) {
    for (int d = 0; d < topt.districts; ++d) {
      EXPECT_EQ(stored_num(cluster, district_ytd_key(w, d)), driver.payment_sum(w, d))
          << "ytd w" << w << "/d" << d;
      EXPECT_EQ(stored_num(cluster, district_order_count_key(w, d)),
                driver.admitted_new_orders(w, d))
          << "nord w" << w << "/d" << d;
    }
  }
}

}  // namespace
}  // namespace tordb::workload::tpcc
