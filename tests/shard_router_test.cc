// Shard tier: directory mapping, router fast path, cross-shard commit
// barrier, fail-over under partition/crash, and exactly-once across
// fail-over (DESIGN.md §8).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "shard/directory.h"
#include "shard/router.h"
#include "workload/sharded_cluster.h"

namespace tordb::shard {
namespace {

using db::Command;
using workload::ShardedCluster;
using workload::ShardedClusterOptions;

TEST(Directory, HashedMappingIsDeterministicAndTotal) {
  const Directory d = Directory::hashed(4);
  EXPECT_EQ(d.shards(), 4);
  EXPECT_FALSE(d.is_ranged());
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 400; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const int s = d.shard_of(key);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(d.shard_of(key), s);  // stable
    ++hits[static_cast<std::size_t>(s)];
  }
  for (int s = 0; s < 4; ++s) EXPECT_GT(hits[static_cast<std::size_t>(s)], 0) << s;
}

TEST(Directory, RangedMappingFollowsSplitPoints) {
  const Directory d = Directory::ranged({"g", "p"});
  EXPECT_EQ(d.shards(), 3);
  EXPECT_TRUE(d.is_ranged());
  EXPECT_EQ(d.shard_of(""), 0);
  EXPECT_EQ(d.shard_of("apple"), 0);
  EXPECT_EQ(d.shard_of("g"), 1);  // split point belongs to the upper shard
  EXPECT_EQ(d.shard_of("melon"), 1);
  EXPECT_EQ(d.shard_of("p"), 2);
  EXPECT_EQ(d.shard_of("zebra"), 2);
  EXPECT_THROW(Directory::ranged({"z", "a"}), std::invalid_argument);
  EXPECT_THROW(Directory::hashed(0), std::invalid_argument);
}

TEST(Directory, ShardsOfDeduplicatesAndSorts) {
  const Directory d = Directory::ranged({"m"});
  Command cmd;
  cmd.ops.push_back(db::Op{db::OpType::kPut, "zz", "v", 0});
  cmd.ops.push_back(db::Op{db::OpType::kPut, "aa", "v", 0});
  cmd.ops.push_back(db::Op{db::OpType::kPut, "ab", "v", 0});
  EXPECT_EQ(d.shards_of(cmd), (std::vector<int>{0, 1}));
  EXPECT_TRUE(d.shards_of(Command{}).empty());
}

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() : c_(options()) {
    c_.run_for(seconds(2));  // both shards form their primary
    // One key owned by each shard, for targeted traffic.
    for (int i = 0; shard_key_[0].empty() || shard_key_[1].empty(); ++i) {
      const std::string key = "k" + std::to_string(i);
      auto& slot = shard_key_[static_cast<std::size_t>(c_.directory().shard_of(key))];
      if (slot.empty()) slot = key;
    }
  }

  static ShardedClusterOptions options() {
    ShardedClusterOptions o;
    o.shards = 2;
    o.replicas_per_shard = 3;
    o.seed = 1;
    return o;
  }

  const std::string& key_in(int shard) { return shard_key_[static_cast<std::size_t>(shard)]; }

  std::string db_at(int shard, int idx, const std::string& key) {
    return c_.node(shard, idx).engine().database().get(key);
  }

  ShardedCluster c_;
  std::string shard_key_[2];
};

TEST_F(RouterTest, SingleShardFastPathCommitsAtOwningShardOnly) {
  bool committed = false;
  int involved = 0;
  c_.router().submit(1, Command::put(key_in(0), "v"), [&](const RouteReply& r) {
    committed = r.committed;
    involved = r.shards_involved;
  });
  c_.run_for(millis(300));
  EXPECT_TRUE(committed);
  EXPECT_EQ(involved, 1);
  EXPECT_EQ(db_at(0, 1, key_in(0)), "v");
  EXPECT_EQ(db_at(1, 1, key_in(0)), "");  // never reached the other group
  EXPECT_EQ(c_.router().stats().routed_single, 1u);
  EXPECT_EQ(c_.router().stats().routed_cross, 0u);
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(RouterTest, ShardsRunIndependentGreenOrders) {
  const std::int64_t base1 = c_.green_count(1);
  for (int i = 0; i < 8; ++i) c_.router().submit(1, Command::put(key_in(0), "v"));
  c_.run_for(seconds(1));
  EXPECT_TRUE(c_.router().idle());
  // Shard 0 ordered the traffic; shard 1's green order never moved.
  EXPECT_GE(c_.green_count(0), 8);
  EXPECT_EQ(c_.green_count(1), base1);
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(RouterTest, CrossShardAppliesAtEveryInvolvedShard) {
  Command cmd;
  cmd.ops.push_back(db::Op{db::OpType::kPut, key_in(0), "x0", 0});
  cmd.ops.push_back(db::Op{db::OpType::kPut, key_in(1), "x1", 0});
  bool committed = false;
  RouteReply reply;
  c_.router().submit(7, cmd, [&](const RouteReply& r) {
    committed = r.committed;
    reply = r;
  });
  c_.run_for(millis(500));
  ASSERT_TRUE(committed);
  EXPECT_EQ(reply.shards_involved, 2);
  EXPECT_GE(reply.barrier_wait, 0);
  // Each group applied its slice, plus the cross-shard marker.
  const std::string marker = Router::cross_marker_key(7, 1);
  for (int idx = 0; idx < 3; ++idx) {
    EXPECT_EQ(db_at(0, idx, key_in(0)), "x0") << idx;
    EXPECT_EQ(db_at(1, idx, key_in(1)), "x1") << idx;
    EXPECT_NE(db_at(0, idx, marker), "") << idx;
    EXPECT_NE(db_at(1, idx, marker), "") << idx;
  }
  // But only its slice: shard 0 never saw shard 1's key.
  EXPECT_EQ(db_at(0, 0, key_in(1)), "");
  EXPECT_EQ(c_.router().stats().routed_cross, 1u);
  EXPECT_EQ(c_.router().stats().cross_partial_aborts, 0u);
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(RouterTest, CrossShardChecksHandOffToCoordinatorAndAbortAtomically) {
  // A cross-shard command carrying a kCheck is handed to the wired
  // prepared-check coordinator (DESIGN.md §13). Here the precondition is
  // false, so the transaction check-aborts — atomically: nothing applied.
  Command cmd;
  cmd.ops.push_back(db::Op{db::OpType::kCheck, key_in(0), "whatever", 0});
  cmd.ops.push_back(db::Op{db::OpType::kPut, key_in(1), "x1", 0});
  bool replied = false, committed = true, check_aborted = false;
  c_.router().submit(3, cmd, [&](const RouteReply& r) {
    replied = true;
    committed = r.committed;
    check_aborted = r.check_aborted;
  });
  c_.run_for(millis(500));
  EXPECT_TRUE(replied);
  EXPECT_FALSE(committed);
  EXPECT_TRUE(check_aborted);
  EXPECT_EQ(c_.router().stats().txn_handoffs, 1u);
  EXPECT_EQ(c_.router().stats().rejected_cross_checks, 0u);
  // Applied at NO shard.
  EXPECT_EQ(db_at(1, 0, key_in(1)), "");
  // Single-shard commands still carry checks (evaluated inside one group).
  bool ok = false;
  c_.router().submit(3, Command::checked_put(key_in(0), "", "once"),
                     [&](const RouteReply& r) { ok = r.committed; });
  c_.run_for(millis(300));
  EXPECT_TRUE(ok);
}

TEST_F(RouterTest, GenuinelyUnroutableMixesRejectWithUnsupportedMix) {
  // Range administration pinned to one group can never span shards: the
  // router rejects the mix up front, applied at no shard, with the precise
  // unsupported_mix cause (not the generic abort).
  Command cmd;
  cmd.ops.push_back(db::Op{db::OpType::kFenceRange, key_in(0), "", 0});
  cmd.ops.push_back(db::Op{db::OpType::kPut, key_in(1), "x1", 0});
  bool replied = false;
  RouteReply reply;
  c_.router().submit(4, cmd, [&](const RouteReply& r) {
    replied = true;
    reply = r;
  });
  c_.run_for(millis(300));
  EXPECT_TRUE(replied);
  EXPECT_FALSE(reply.committed);
  EXPECT_TRUE(reply.unsupported_mix);
  EXPECT_EQ(c_.router().stats().rejected_unsupported, 1u);
  EXPECT_EQ(db_at(1, 0, key_in(1)), "");
}

TEST_F(RouterTest, FailoverUnderPartitionCommitsInMajority) {
  // The session's first replica of shard 0 lands in a minority; the request
  // times out there and fails over to the majority side.
  c_.partition_shard(0, {{0}, {1, 2}});
  c_.run_for(millis(500));
  bool committed = false;
  c_.router().submit(1, Command::put(key_in(0), "v"), [&](const RouteReply& r) {
    committed = r.committed;
  });
  c_.run_for(seconds(4));
  EXPECT_TRUE(committed);
  EXPECT_GE(c_.router().stats().failovers, 1u);
  EXPECT_EQ(db_at(0, 1, key_in(0)), "v");
  // Shard 1 was never partitioned and kept working throughout.
  bool other = false;
  c_.router().submit(2, Command::put(key_in(1), "w"), [&](const RouteReply& r) {
    other = r.committed;
  });
  c_.run_for(millis(300));
  EXPECT_TRUE(other);
  c_.heal();
  c_.run_for(seconds(2));
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(RouterTest, ExactlyOnceAcrossCrashFailover) {
  // Crash the serving replica after the action may have been ordered but
  // before the reply: the add must land exactly once at shard 0.
  Command cmd;
  cmd.ops.push_back(db::Op{db::OpType::kAdd, key_in(0), "", 100});
  bool committed = false;
  int attempts = 0;
  c_.router().submit(9, cmd, [&](const RouteReply& r) {
    committed = r.committed;
    attempts = r.attempts;
  });
  c_.run_for(millis(9) + micros(200));
  c_.crash(0, 0);
  c_.run_for(seconds(4));
  EXPECT_TRUE(committed);
  EXPECT_GE(attempts, 2);
  EXPECT_EQ(db_at(0, 1, key_in(0)), "100");
  EXPECT_EQ(db_at(0, 2, key_in(0)), "100");
  c_.recover(0, 0);
  c_.run_for(seconds(2));
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(RouterTest, ShardSeedsAreDeterministicAndDistinct) {
  const std::uint64_t s0 = c_.shard_seed(0);
  const std::uint64_t s1 = c_.shard_seed(1);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(c_.shard_seed(0), s0);  // stable
  ShardedCluster other(options());  // same base seed => same derived seeds
  EXPECT_EQ(other.shard_seed(0), s0);
  EXPECT_EQ(other.shard_seed(1), s1);
}

TEST(ShardedClusterObs, RouterEmitsTraceEventsAndPerShardMetrics) {
  ShardedClusterOptions o;
  o.shards = 2;
  o.replicas_per_shard = 3;
  o.seed = 5;
  o.obs.trace = true;
  o.obs.check = true;
  o.obs.metrics_window = millis(500);
  ShardedCluster c(o);
  c.run_for(seconds(2));
  std::string k0, k1;
  for (int i = 0; k0.empty() || k1.empty(); ++i) {
    const std::string key = "k" + std::to_string(i);
    (c.directory().shard_of(key) == 0 ? k0 : k1) = key;
  }
  c.router().submit(1, Command::put(k0, "v"));
  Command cross;
  cross.ops.push_back(db::Op{db::OpType::kPut, k0, "x", 0});
  cross.ops.push_back(db::Op{db::OpType::kPut, k1, "x", 0});
  c.router().submit(1, cross);
  c.run_for(seconds(1));
  ASSERT_TRUE(c.router().idle());

  int route = 0, cross_submit = 0, cross_commit = 0;
  for (const auto& e : c.trace_bus()->ring_snapshot()) {
    if (e.kind == obs::EventKind::kShardRoute) ++route;
    if (e.kind == obs::EventKind::kShardCrossSubmit) ++cross_submit;
    if (e.kind == obs::EventKind::kShardCrossCommit) ++cross_commit;
  }
  EXPECT_EQ(route, 3);  // 1 single + 2 cross sub-routes
  EXPECT_EQ(cross_submit, 1);
  EXPECT_EQ(cross_commit, 1);

  c.sample_metrics();
  const std::string totals = c.metrics()->totals();
  EXPECT_NE(totals.find("shard.0.actions_green"), std::string::npos) << totals;
  EXPECT_NE(totals.find("shard.1.actions_green"), std::string::npos) << totals;
  EXPECT_NE(totals.find("router.committed"), std::string::npos) << totals;

  // The per-group checker followed both groups' histories.
  ASSERT_NE(c.checker(), nullptr);
  EXPECT_TRUE(c.checker()->ok()) << c.checker()->report();
  EXPECT_GT(c.checker()->canonical_green_count(0), 0);
  EXPECT_GT(c.checker()->canonical_green_count(1), 0);
  EXPECT_EQ(c.checker()->total_green_count(),
            c.checker()->canonical_green_count(0) + c.checker()->canonical_green_count(1));
}

}  // namespace
}  // namespace tordb::shard
