// Wide-area topology features of the simulated network: sites, inter-site
// latency, and the shared per-site WAN egress with one-copy-per-site
// multicast semantics.
#include <gtest/gtest.h>

#include "sim/network.h"

namespace tordb {
namespace {

NetworkParams wan_params(SimDuration inter_site, SimDuration per_byte = 0) {
  NetworkParams p;
  p.jitter = 0;
  p.inter_site_latency = inter_site;
  p.wan_per_byte = per_byte;
  return p;
}

class WanTest : public ::testing::Test {
 protected:
  WanTest() : sim_(1), net_(sim_, wan_params(millis(20))) {
    for (NodeId n : {0, 1, 2, 3}) {
      net_.add_node(n);
      net_.set_packet_handler(n, [this, n](NodeId, const Bytes&) {
        arrivals_.push_back({n, sim_.now()});
      });
    }
    net_.set_site(0, 0);
    net_.set_site(1, 0);
    net_.set_site(2, 1);
    net_.set_site(3, 1);
  }

  struct Arrival {
    NodeId at;
    SimTime when;
  };

  Simulator sim_;
  Network net_;
  std::vector<Arrival> arrivals_;
};

TEST_F(WanTest, IntraSiteIsFast) {
  net_.send(0, 1, Bytes(100));
  sim_.run();
  ASSERT_EQ(arrivals_.size(), 1u);
  EXPECT_LT(arrivals_[0].when, millis(1));
}

TEST_F(WanTest, InterSitePaysWanLatency) {
  net_.send(0, 2, Bytes(100));
  sim_.run();
  ASSERT_EQ(arrivals_.size(), 1u);
  EXPECT_GE(arrivals_[0].when, millis(20));
  EXPECT_LT(arrivals_[0].when, millis(21));
}

TEST_F(WanTest, MulticastMixesLocalAndRemote) {
  net_.multicast(0, {1, 2, 3}, Bytes(100));
  sim_.run();
  ASSERT_EQ(arrivals_.size(), 3u);
  for (const auto& a : arrivals_) {
    if (a.at == 1) {
      EXPECT_LT(a.when, millis(1));
    } else {
      EXPECT_GE(a.when, millis(20));
    }
  }
}

TEST_F(WanTest, DefaultSiteIsZero) {
  EXPECT_EQ(net_.site(0), 0);
  net_.set_site(0, 5);
  EXPECT_EQ(net_.site(0), 5);
}

TEST(WanBandwidth, EgressSerializesCrossSiteCopies) {
  Simulator sim(1);
  // 1 microsecond per byte: a 1000-byte message occupies 1ms of egress.
  Network net(sim, wan_params(0, micros(1)));
  for (NodeId n : {0, 1, 2}) net.add_node(n);
  net.set_site(0, 0);
  net.set_site(1, 1);
  net.set_site(2, 1);
  std::vector<SimTime> arrivals;
  net.set_packet_handler(1, [&](NodeId, const Bytes&) { arrivals.push_back(sim.now()); });
  // Two back-to-back 1000-byte unicasts: the second queues behind the first
  // on site 0's egress.
  net.send(0, 1, Bytes(1000));
  net.send(0, 1, Bytes(1000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[0], millis(1));
  EXPECT_GE(arrivals[1] - arrivals[0], millis(1) - micros(50));
}

TEST(WanBandwidth, MulticastPaysOneCopyPerRemoteSite) {
  Simulator sim(1);
  NetworkParams p = wan_params(0, micros(1));
  Network net(sim, p);
  // Sender at site 0; two receivers at site 1, two at site 2.
  for (NodeId n : {0, 1, 2, 3, 4}) net.add_node(n);
  net.set_site(0, 0);
  net.set_site(1, 1);
  net.set_site(2, 1);
  net.set_site(3, 2);
  net.set_site(4, 2);
  int got = 0;
  for (NodeId n : {1, 2, 3, 4}) {
    net.set_packet_handler(n, [&](NodeId, const Bytes&) { ++got; });
  }
  const SimTime start = sim.now();
  net.multicast(0, {1, 2, 3, 4}, Bytes(1000));
  sim.run();
  EXPECT_EQ(got, 4);
  // Two remote sites => 2 serialized copies => egress busy exactly 2ms, not
  // 4ms: a third cross-site message queues behind 2ms of traffic.
  SimTime third_arrival = 0;
  net.set_packet_handler(1, [&](NodeId, const Bytes&) { third_arrival = sim.now(); });
  net.send(0, 1, Bytes(1000));
  sim.run();
  // With one copy per remote site the egress accumulated 2ms; had the
  // multicast paid one copy per *target* (4 copies) the queue would be 4ms
  // and the probe could not arrive before 5ms.
  EXPECT_GE(third_arrival - start, millis(3) - micros(50));
  EXPECT_LT(third_arrival - start, millis(5));
}

TEST(WanBandwidth, IntraSiteTrafficUnaffectedByEgress) {
  Simulator sim(1);
  Network net(sim, wan_params(0, micros(10)));
  for (NodeId n : {0, 1}) net.add_node(n);
  // Same site: no egress serialization even with extreme per-byte WAN cost
  // (which would add 100ms for this 10KB message); only the ordinary wire
  // and CPU byte costs apply (~4ms).
  SimTime arrival = -1;
  net.set_packet_handler(1, [&](NodeId, const Bytes&) { arrival = sim.now(); });
  net.send(0, 1, Bytes(10000));
  sim.run();
  EXPECT_LT(arrival, millis(10));
}

TEST(WanBandwidth, CrashReleasesSiteEgress) {
  Simulator sim(1);
  Network net(sim, wan_params(0, micros(1)));
  for (NodeId n : {0, 1, 2}) net.add_node(n);
  net.set_site(0, 0);
  net.set_site(1, 0);  // same site as 0
  net.set_site(2, 1);
  // Node 0 loads its site's egress with 10ms of cross-site traffic, then
  // crashes before any of it reaches the wire.
  net.send(0, 2, Bytes(10000));
  net.crash(0);
  // A healthy same-site sender must not serialize behind bytes that died
  // with the crashed node: the egress is released on crash.
  SimTime arrival = -1;
  net.set_packet_handler(2, [&](NodeId, const Bytes&) { arrival = sim.now(); });
  net.send(1, 2, Bytes(1000));
  sim.run();
  ASSERT_GE(arrival, 0);
  EXPECT_LT(arrival, millis(5));  // 10ms queue would push arrival past 10ms
}

TEST(WanBandwidth, SitesShareTheEgressQueue) {
  Simulator sim(1);
  Network net(sim, wan_params(0, micros(1)));
  for (NodeId n : {0, 1, 2}) net.add_node(n);
  net.set_site(0, 0);
  net.set_site(1, 0);  // same site as 0
  net.set_site(2, 1);
  std::vector<SimTime> arrivals;
  net.set_packet_handler(2, [&](NodeId, const Bytes&) { arrivals.push_back(sim.now()); });
  // Two different senders at site 0 share one egress pipe.
  net.send(0, 2, Bytes(1000));
  net.send(1, 2, Bytes(1000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1] - arrivals[0], millis(1) - micros(50));
}

}  // namespace
}  // namespace tordb
