// Randomized property tests with *dynamic membership churn*: on top of
// traffic, partitions, merges, crashes and recoveries, the schedule also
// instantiates brand-new replicas (§5.2 join with snapshot transfer) and
// permanently removes members (§5.1 PERSISTENT_LEAVE). The paper's dynamic
// safety theorems (Global Total Order and Global FIFO Order across
// membership generations) are asserted throughout, and liveness at
// quiescence.
#include <gtest/gtest.h>

#include <set>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "util/rng.h"
#include "workload/cluster.h"

namespace tordb::core {
namespace {

using db::Command;
using workload::ClusterOptions;
using workload::EngineCluster;

struct Scenario {
  std::uint64_t seed;
  int base_nodes;
  int steps;
  int max_joins;
};

class ChurnSchedule : public ::testing::TestWithParam<Scenario> {};

TEST_P(ChurnSchedule, DynamicSafetyAndLiveness) {
  const Scenario sc = GetParam();
  Rng rng(sc.seed * 104729);
  ClusterOptions o;
  o.replicas = sc.base_nodes;
  o.seed = sc.seed;
  EngineCluster c(o);
  c.run_for(seconds(1));

  int total_nodes = sc.base_nodes;
  int joins_left = sc.max_joins;
  std::set<NodeId> down;
  std::set<NodeId> leave_requested;

  auto running_members = [&] {
    std::vector<NodeId> v;
    for (NodeId i = 0; i < total_nodes; ++i) {
      if (c.node(i).running() && !c.node(i).has_left()) v.push_back(i);
    }
    return v;
  };

  auto random_partition = [&] {
    const int k = static_cast<int>(rng.next_range(1, 3));
    std::vector<std::vector<NodeId>> comps(static_cast<std::size_t>(k));
    for (NodeId i = 0; i < total_nodes; ++i) {
      comps[rng.next_below(static_cast<std::uint64_t>(k))].push_back(i);
    }
    std::vector<std::vector<NodeId>> nonempty;
    for (auto& comp : comps) {
      if (!comp.empty()) nonempty.push_back(std::move(comp));
    }
    c.partition(nonempty);
  };

  for (int step = 0; step < sc.steps; ++step) {
    const auto members = running_members();
    const int what = static_cast<int>(rng.next_below(12));
    if (what < 5 && !members.empty()) {
      const int burst = static_cast<int>(rng.next_range(1, 4));
      for (int b = 0; b < burst; ++b) {
        const NodeId n = members[rng.next_below(members.size())];
        c.engine(n).submit({}, Command::add("total", 1), n, Semantics::kStrict, nullptr);
      }
    } else if (what < 7) {
      random_partition();
    } else if (what == 7) {
      c.heal();
    } else if (what == 8 && members.size() > 2) {
      const NodeId victim = members[rng.next_below(members.size())];
      c.crash(victim);
      down.insert(victim);
    } else if (what == 9 && !down.empty()) {
      const NodeId n = *down.begin();
      c.recover(n);
      down.erase(n);
    } else if (what == 10 && joins_left > 0 && !members.empty()) {
      --joins_left;
      const NodeId id = static_cast<NodeId>(total_nodes++);
      auto& joiner = c.add_dormant(id);
      std::vector<NodeId> peers;
      for (int p = 0; p < 3 && p < static_cast<int>(members.size()); ++p) {
        peers.push_back(members[rng.next_below(members.size())]);
      }
      joiner.join_via(peers);
    } else if (what == 11 && members.size() > 3 &&
               leave_requested.size() + 1 < members.size()) {
      const NodeId leaver = members[rng.next_below(members.size())];
      if (!leave_requested.count(leaver)) {
        leave_requested.insert(leaver);
        c.engine(leaver).request_leave();
      }
    }
    c.run_for(millis(static_cast<std::int64_t>(rng.next_range(10, 250))));
    ASSERT_EQ(c.check_green_prefix_consistency(), std::nullopt) << "seed " << sc.seed;
    ASSERT_EQ(c.check_single_primary(), std::nullopt) << "seed " << sc.seed;
  }

  // Quiesce.
  for (NodeId n : down) c.recover(n);
  c.heal();
  c.run_for(seconds(15));

  // Everything that is still a member converged into one primary.
  std::vector<NodeId> active;
  for (NodeId i = 0; i < total_nodes; ++i) {
    if (c.node(i).running() && !c.node(i).has_left()) active.push_back(i);
  }
  ASSERT_GE(active.size(), 2u) << "seed " << sc.seed;
  EXPECT_TRUE(c.converged_primary(active)) << "seed " << sc.seed;
  EXPECT_EQ(c.check_all(), std::nullopt) << "seed " << sc.seed;
  // All requested leaves eventually completed (liveness of the green order).
  for (NodeId l : leave_requested) {
    EXPECT_TRUE(c.node(l).has_left()) << "leave of " << l << " never completed, seed "
                                      << sc.seed;
  }
  for (std::size_t i = 1; i < active.size(); ++i) {
    EXPECT_EQ(c.engine(active[i]).db_digest(), c.engine(active[0]).db_digest());
  }
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> v;
  for (std::uint64_t s = 101; s <= 124; ++s) v.push_back({s, 5, 35, 2});
  for (std::uint64_t s = 201; s <= 214; ++s) v.push_back({s, 7, 30, 3});
  for (std::uint64_t s = 301; s <= 306; ++s) v.push_back({s, 9, 40, 3});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Churn, ChurnSchedule, ::testing::ValuesIn(scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_n" +
                                  std::to_string(info.param.base_nodes);
                         });

}  // namespace
}  // namespace tordb::core
