// Application semantics (paper §6): weak/dirty queries, timestamp and
// commutative updates, active and interactive actions.
#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "workload/cluster.h"

namespace tordb::core {
namespace {

using db::Command;
using workload::ClusterOptions;
using workload::EngineCluster;

ClusterOptions small(int n, std::uint64_t seed = 1) {
  ClusterOptions o;
  o.replicas = n;
  o.seed = seed;
  return o;
}

class SemanticsTest : public ::testing::Test {
 protected:
  SemanticsTest() : c_(small(5)) {
    c_.run_for(seconds(1));
    c_.engine(0).submit({}, Command::put("k", "initial"), 1, Semantics::kStrict, nullptr);
    c_.run_for(millis(300));
  }

  void split_minority() {
    c_.partition({{0, 1, 2}, {3, 4}});
    c_.run_for(millis(500));
  }

  EngineCluster c_;
};

TEST_F(SemanticsTest, WeakQueryAnswersImmediatelyInMinority) {
  split_minority();
  bool answered = false;
  c_.engine(4).submit_query(Command::get("k"), QueryMode::kWeak, [&](const Reply& r) {
    answered = true;
    ASSERT_EQ(r.reads.size(), 1u);
    EXPECT_EQ(r.reads[0], "initial");  // consistent but possibly obsolete
  });
  c_.run_for(millis(10));
  EXPECT_TRUE(answered);
}

TEST_F(SemanticsTest, WeakQueryMayMissOwnPendingUpdate) {
  // §6: "a client requesting some updates ... then querying and getting an
  // old result which does not reflect the updates it just made."
  split_minority();
  c_.engine(4).submit({}, Command::put("k", "pending"), 1, Semantics::kStrict, nullptr);
  c_.run_for(millis(100));  // ordered red locally, not green
  bool answered = false;
  c_.engine(4).submit_query(Command::get("k"), QueryMode::kWeak, [&](const Reply& r) {
    answered = true;
    EXPECT_EQ(r.reads[0], "initial");  // green state does not include it
  });
  c_.run_for(millis(10));
  EXPECT_TRUE(answered);
}

TEST_F(SemanticsTest, DirtyQuerySeesRedActions) {
  split_minority();
  c_.engine(4).submit({}, Command::put("k", "red-value"), 1, Semantics::kStrict, nullptr);
  c_.run_for(millis(100));
  bool answered = false;
  c_.engine(4).submit_query(Command::get("k"), QueryMode::kDirty, [&](const Reply& r) {
    answered = true;
    EXPECT_EQ(r.reads[0], "red-value");  // latest, though not consistent
  });
  c_.run_for(millis(10));
  EXPECT_TRUE(answered);
}

TEST_F(SemanticsTest, StrictQueryWaitsForPrimary) {
  split_minority();
  bool answered = false;
  c_.engine(4).submit_query(Command::get("k"), QueryMode::kStrict,
                            [&](const Reply&) { answered = true; });
  c_.run_for(seconds(1));
  EXPECT_FALSE(answered);  // blocked in the non-primary component
  c_.heal();
  c_.run_for(seconds(2));
  EXPECT_TRUE(answered);
}

TEST_F(SemanticsTest, StrictQueryInPrimaryAnswersAfterOwnActions) {
  bool update_done = false, query_done = false;
  c_.engine(0).submit({}, Command::put("k", "new"), 1, Semantics::kStrict,
                      [&](const Reply&) { update_done = true; });
  c_.engine(0).submit_query(Command::get("k"), QueryMode::kStrict, [&](const Reply& r) {
    query_done = true;
    EXPECT_TRUE(update_done);  // answered only after the preceding action
    EXPECT_EQ(r.reads[0], "new");
  });
  c_.run_for(millis(300));
  EXPECT_TRUE(query_done);
}

TEST_F(SemanticsTest, CommutativeUpdateRepliesInMinority) {
  split_minority();
  bool replied = false;
  c_.engine(4).submit({}, Command::add("stock", -3), 1, Semantics::kCommutative,
                      [&](const Reply&) { replied = true; });
  c_.run_for(millis(100));
  EXPECT_TRUE(replied);  // §6: no global order needed to acknowledge
}

TEST_F(SemanticsTest, CommutativeUpdatesConvergeAfterMerge) {
  split_minority();
  c_.engine(0).submit({}, Command::add("stock", 7), 1, Semantics::kCommutative, nullptr);
  c_.engine(4).submit({}, Command::add("stock", -3), 1, Semantics::kCommutative, nullptr);
  c_.run_for(millis(300));
  c_.heal();
  c_.run_for(seconds(2));
  ASSERT_TRUE(c_.converged_primary(c_.all_ids()));
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(c_.engine(i).database().get("stock"), "4") << "node " << i;
  }
}

TEST_F(SemanticsTest, TimestampUpdatesLastWriterWins) {
  // §6 location-tracking example: only the highest timestamp matters; after
  // the partition heals the replicas converge on it regardless of order.
  split_minority();
  c_.engine(0).submit({}, Command::timestamp_put("loc", "majority-pos", 100), 1,
                      Semantics::kTimestamp, nullptr);
  c_.engine(4).submit({}, Command::timestamp_put("loc", "minority-pos", 200), 1,
                      Semantics::kTimestamp, nullptr);
  c_.run_for(millis(300));
  c_.heal();
  c_.run_for(seconds(2));
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(c_.engine(i).database().get("loc"), "minority-pos") << "node " << i;
  }
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(SemanticsTest, ActiveActionExecutesAtOrderingTime) {
  // §6 active transactions: the procedure (an add) runs when the action is
  // ordered, on the then-current state — not a value frozen at submit time.
  c_.engine(0).submit({}, Command::put("n", "10"), 1, Semantics::kStrict, nullptr);
  c_.engine(1).submit({}, Command::add("n", 5), 1, Semantics::kStrict, nullptr);
  c_.engine(2).submit({}, Command::add("n", 5), 1, Semantics::kStrict, nullptr);
  c_.run_for(millis(500));
  EXPECT_EQ(c_.engine(3).database().get("n"), "20");
}

TEST_F(SemanticsTest, InteractiveTransactionCommitPath) {
  // §6 interactive transactions: read, then submit an active action that
  // re-checks what was read.
  std::string seen;
  c_.engine(0).submit_query(Command::get("k"), QueryMode::kStrict,
                            [&](const Reply& r) { seen = r.reads[0]; });
  c_.run_for(millis(100));
  ASSERT_EQ(seen, "initial");
  bool aborted = true;
  c_.engine(0).submit({}, Command::checked_put("k", seen, "updated-by-user"), 1,
                      Semantics::kStrict, [&](const Reply& r) { aborted = r.aborted; });
  c_.run_for(millis(300));
  EXPECT_FALSE(aborted);
  EXPECT_EQ(c_.engine(4).database().get("k"), "updated-by-user");
}

TEST_F(SemanticsTest, InteractiveTransactionAbortsEverywhereOnConflict) {
  // A conflicting write sneaks in between read and update: the check fails
  // identically at every replica ("if one server aborts, all of the
  // servers will abort that (trans)action").
  std::string seen;
  c_.engine(0).submit_query(Command::get("k"), QueryMode::kStrict,
                            [&](const Reply& r) { seen = r.reads[0]; });
  c_.run_for(millis(100));
  c_.engine(3).submit({}, Command::put("k", "conflict"), 9, Semantics::kStrict, nullptr);
  c_.run_for(millis(300));
  bool aborted = false;
  c_.engine(0).submit({}, Command::checked_put("k", seen, "stale-write"), 1, Semantics::kStrict,
                      [&](const Reply& r) { aborted = r.aborted; });
  c_.run_for(millis(300));
  EXPECT_TRUE(aborted);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(c_.engine(i).database().get("k"), "conflict") << "node " << i;
  }
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(SemanticsTest, DirtyDatabaseDoesNotPolluteGreenState) {
  split_minority();
  c_.engine(4).submit({}, Command::put("k", "red-only"), 1, Semantics::kStrict, nullptr);
  c_.run_for(millis(100));
  EXPECT_EQ(c_.engine(4).database().get("k"), "initial");       // green state clean
  EXPECT_EQ(c_.engine(4).dirty_database().get("k"), "red-only");  // overlay sees it
}

}  // namespace
}  // namespace tordb::core
