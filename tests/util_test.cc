#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"
#include "util/serde.h"
#include "util/types.h"
#include "util/zipf.h"

namespace tordb {
namespace {

TEST(Types, ActionIdOrdering) {
  ActionId a{1, 5};
  ActionId b{1, 6};
  ActionId c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ActionId{1, 5}));
}

TEST(Types, ConfigIdOrdering) {
  ConfigId a{3, 7};
  ConfigId b{4, 1};
  EXPECT_LT(a, b);  // counter dominates
  EXPECT_LT((ConfigId{4, 0}), (ConfigId{4, 1}));
}

TEST(Types, DurationHelpers) {
  EXPECT_EQ(millis(1), micros(1000));
  EXPECT_EQ(seconds(1), millis(1000));
  EXPECT_DOUBLE_EQ(to_millis(millis(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
}

TEST(Types, ToStringFormats) {
  EXPECT_EQ(to_string(ActionId{3, 42}), "a(3:42)");
  EXPECT_EQ(to_string(ConfigId{9, 2}), "c(9@2)");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextRangeInclusive) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.next_range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkIndependent) {
  Rng parent(5);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Serde, RoundTripScalars) {
  BufWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1'000'000'000'000LL);
  w.boolean(true);
  w.boolean(false);
  Bytes b = w.take();

  BufReader r(b);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1'000'000'000'000LL);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Serde, RoundTripStringsAndBytes) {
  BufWriter w;
  w.str("hello world");
  w.str("");
  w.bytes(Bytes{1, 2, 3, 255});
  Bytes b = w.take();

  BufReader r(b);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3, 255}));
  EXPECT_TRUE(r.done());
}

TEST(Serde, RoundTripIds) {
  BufWriter w;
  w.action_id(ActionId{7, 99});
  w.config_id(ConfigId{12, 3});
  w.node_ids({1, 2, 5});
  Bytes b = w.take();

  BufReader r(b);
  EXPECT_EQ(r.action_id(), (ActionId{7, 99}));
  EXPECT_EQ(r.config_id(), (ConfigId{12, 3}));
  EXPECT_EQ(r.node_ids(), (std::vector<NodeId>{1, 2, 5}));
}

TEST(Serde, UnderrunThrows) {
  BufWriter w;
  w.u32(1);
  Bytes b = w.take();
  BufReader r(b);
  r.u32();
  EXPECT_THROW(r.u64(), SerdeError);
}

TEST(Serde, StringUnderrunThrows) {
  BufWriter w;
  w.u32(100);  // claims 100 bytes follow; none do
  Bytes b = w.take();
  BufReader r(b);
  EXPECT_THROW(r.str(), SerdeError);
}

TEST(Zipf, Deterministic) {
  util::ZipfGenerator za(100, 0.99);
  util::ZipfGenerator zb(100, 0.99);
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(za.next(a), zb.next(b));
}

TEST(Zipf, BoundsRespected) {
  for (const double theta : {0.0, 0.5, 0.99, 1.2}) {
    util::ZipfGenerator z(17, theta);
    Rng r(7);
    for (int i = 0; i < 5000; ++i) EXPECT_LT(z.next(r), 17u) << "theta=" << theta;
  }
}

TEST(Zipf, SingleElement) {
  util::ZipfGenerator z(1, 1.1);
  Rng r(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.next(r), 0u);
}

TEST(Zipf, ThetaZeroIsUniform) {
  // theta == 0 degenerates to next_below: every rank roughly equally likely.
  util::ZipfGenerator z(10, 0.0);
  Rng r(11);
  std::vector<int> counts(10, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++counts[static_cast<std::size_t>(z.next(r))];
  for (const int c : counts) {
    EXPECT_GT(c, draws / 10 / 2);
    EXPECT_LT(c, draws / 10 * 2);
  }
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  // With theta near 1 the head ranks dominate; heavier theta dominates more.
  const int draws = 20000;
  auto head_share = [&](double theta) {
    util::ZipfGenerator z(1000, theta);
    Rng r(5);
    int head = 0;
    for (int i = 0; i < draws; ++i) {
      if (z.next(r) < 10) ++head;
    }
    return static_cast<double>(head) / draws;
  };
  const double mild = head_share(0.5);
  const double heavy = head_share(1.2);
  EXPECT_GT(mild, 0.05);   // far above uniform's 1%
  EXPECT_GT(heavy, mild);  // skew grows with theta
  EXPECT_GT(heavy, 0.5);   // rank 0..9 of 1000 dominates at theta 1.2
}

TEST(Zipf, InvalidArgsThrow) {
  EXPECT_THROW(util::ZipfGenerator(0, 1.0), std::invalid_argument);
  EXPECT_THROW(util::ZipfGenerator(10, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace tordb
