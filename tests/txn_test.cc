// Cross-shard prepared-check transactions (src/txn; DESIGN.md §13):
// two-round commit/abort atomicity, no reserved-key residue, barrier-stamped
// snapshot reads, and coordinator-crash adoption at both halt stages.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "txn/coordinator.h"
#include "workload/sharded_cluster.h"

namespace tordb::txn {
namespace {

using db::Command;
using workload::ShardedCluster;
using workload::ShardedClusterOptions;

std::int64_t as_num(const std::string& v) { return v.empty() ? 0 : std::stoll(v); }

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : TxnTest(0) {}
  explicit TxnTest(int halt_at_stage) : c_(options(halt_at_stage)) {
    c_.run_for(seconds(2));  // both shards form their primary
  }

  static ShardedClusterOptions options(int halt_at_stage) {
    ShardedClusterOptions o;
    o.shards = 2;
    o.replicas_per_shard = 3;
    o.seed = 11;
    o.range_splits = {"m"};  // "a*" -> shard 0, "z*" -> shard 1
    o.txn_halt_at_stage = halt_at_stage;
    o.obs.check = true;
    return o;
  }

  std::string db_at(int shard, int idx, const std::string& key) {
    return c_.node(shard, idx).engine().database().get(key);
  }

  /// Reserved transaction keys (`__txn/`, `__txnp/`, `__txnd/`) surviving
  /// at any running replica — must be empty once everything resolved.
  std::vector<std::string> txn_residue() {
    std::vector<std::string> out;
    for (int s = 0; s < c_.shards(); ++s) {
      for (int i = 0; i < c_.replicas_per_shard(); ++i) {
        if (!c_.node(s, i).running()) continue;
        const auto& db = c_.node(s, i).engine().database();
        for (const auto& [key, value] : db.scan_prefix("__txn")) out.push_back(key);
      }
    }
    return out;
  }

  /// A checked cross-shard command: a trivially-true precondition at shard 0
  /// plus one update per shard — the router hands it to the coordinator.
  static Command checked_cross(const std::string& k0, const std::string& v0,
                               const std::string& k1, const std::string& v1) {
    Command cmd;
    cmd.ops.push_back(db::Op{db::OpType::kCheck, "a-flag", "", 0});
    cmd.ops.push_back(db::Op{db::OpType::kPut, k0, v0, 0});
    cmd.ops.push_back(db::Op{db::OpType::kPut, k1, v1, 0});
    return cmd;
  }

  ShardedCluster c_;
};

TEST_F(TxnTest, CommitAppliesAllSlicesAndCleansUp) {
  bool committed = false;
  int involved = 0;
  c_.router().submit(5, checked_cross("a-key", "va", "z-key", "vz"),
                     [&](const shard::RouteReply& r) {
                       committed = r.committed;
                       involved = r.shards_involved;
                     });
  c_.run_for(seconds(2));
  ASSERT_TRUE(committed);
  EXPECT_EQ(involved, 2);
  for (int idx = 0; idx < 3; ++idx) {
    EXPECT_EQ(db_at(0, idx, "a-key"), "va") << idx;
    EXPECT_EQ(db_at(1, idx, "z-key"), "vz") << idx;
    EXPECT_EQ(db_at(0, idx, "z-key"), "") << idx;  // only its slice
  }
  EXPECT_TRUE(c_.txn().idle());
  EXPECT_TRUE(txn_residue().empty());  // pending/intent/decision all erased
  EXPECT_EQ(c_.txn().stats().committed, 1u);
  EXPECT_EQ(c_.txn().stats().prepares, 2u);
  EXPECT_EQ(c_.txn().stats().confirms, 2u);
  EXPECT_EQ(c_.router().stats().txn_handoffs, 1u);
  ASSERT_NE(c_.checker(), nullptr);
  EXPECT_GE(c_.checker()->txn_prepared(), 2);
  EXPECT_EQ(c_.checker()->txn_unresolved(), 0);
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(TxnTest, CheckAbortIsAtomicAndLeavesNoResidue) {
  // The shard-0 precondition is false: shard 1's prepared slice must be
  // cancelled, nothing applied anywhere, and no reserved keys survive.
  Command cmd;
  cmd.ops.push_back(db::Op{db::OpType::kCheck, "a-flag", "set", 0});
  cmd.ops.push_back(db::Op{db::OpType::kPut, "a-key", "va", 0});
  cmd.ops.push_back(db::Op{db::OpType::kPut, "z-key", "vz", 0});
  bool replied = false;
  shard::RouteReply reply;
  c_.router().submit(5, cmd, [&](const shard::RouteReply& r) {
    replied = true;
    reply = r;
  });
  c_.run_for(seconds(2));
  ASSERT_TRUE(replied);
  EXPECT_FALSE(reply.committed);
  EXPECT_TRUE(reply.check_aborted);
  for (int idx = 0; idx < 3; ++idx) {
    EXPECT_EQ(db_at(0, idx, "a-key"), "") << idx;
    EXPECT_EQ(db_at(1, idx, "z-key"), "") << idx;
  }
  EXPECT_TRUE(c_.txn().idle());
  EXPECT_TRUE(txn_residue().empty());
  EXPECT_EQ(c_.txn().stats().aborted_check, 1u);
  EXPECT_EQ(c_.txn().stats().committed, 0u);
  EXPECT_GE(c_.txn().stats().cancels, 1u);  // shard 1's stranded prepare
  EXPECT_EQ(c_.checker()->txn_unresolved(), 0);
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(TxnTest, SnapshotReadPinsAConsistentCut) {
  // Checked transfers conserve a-acct + z-acct == 1000; a snapshot read
  // issued mid-stream must observe exactly that sum — never a transfer's
  // debit without its credit.
  bool seeded = false;
  c_.router().submit(1, Command::add("a-acct", 1000),
                     [&](const shard::RouteReply& r) { seeded = r.committed; });
  c_.run_for(millis(300));
  ASSERT_TRUE(seeded);

  int committed = 0;
  auto transfer = [&] {
    Command cmd;
    cmd.ops.push_back(db::Op{db::OpType::kCheck, "a-flag", "", 0});
    cmd.ops.push_back(db::Op{db::OpType::kAdd, "a-acct", "", -5});
    cmd.ops.push_back(db::Op{db::OpType::kAdd, "z-acct", "", 5});
    c_.router().submit(2, std::move(cmd), [&](const shard::RouteReply& r) {
      if (r.committed) ++committed;
    });
  };
  for (int i = 0; i < 10; ++i) transfer();
  c_.sim().after(millis(50), [&] {
    for (int i = 0; i < 10; ++i) transfer();
  });

  SnapshotReadReply snap;
  bool snapped = false;
  c_.sim().after(millis(80), [&] {
    Command q;
    q.ops.push_back(db::Op{db::OpType::kGet, "a-acct", "", 0});
    q.ops.push_back(db::Op{db::OpType::kGet, "z-acct", "", 0});
    c_.txn().snapshot_read(std::move(q), [&](const SnapshotReadReply& r) {
      snapped = true;
      snap = r;
    });
  });
  c_.run_for(seconds(5));

  ASSERT_TRUE(snapped);
  ASSERT_TRUE(snap.ok);
  ASSERT_EQ(snap.reads.size(), 2u);
  EXPECT_EQ(snap.watermarks.size(), 2u);
  EXPECT_EQ(as_num(snap.reads[0]) + as_num(snap.reads[1]), 1000);
  EXPECT_GE(snap.drain_wait, 0);

  EXPECT_EQ(committed, 20);
  EXPECT_TRUE(c_.txn().idle());
  for (int idx = 0; idx < 3; ++idx) {
    EXPECT_EQ(db_at(0, idx, "a-acct"), "900") << idx;
    EXPECT_EQ(db_at(1, idx, "z-acct"), "100") << idx;
  }
  EXPECT_TRUE(txn_residue().empty());
  EXPECT_EQ(c_.txn().stats().snapshot_reads, 1u);
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(TxnTest, SnapshotReadRejectsNonGetQueries) {
  Command q;
  q.ops.push_back(db::Op{db::OpType::kGet, "a-acct", "", 0});
  q.ops.push_back(db::Op{db::OpType::kPut, "a-key", "v", 0});
  bool replied = false, ok = true;
  c_.txn().snapshot_read(std::move(q), [&](const SnapshotReadReply& r) {
    replied = true;
    ok = r.ok;
  });
  c_.run_for(millis(200));
  EXPECT_TRUE(replied);
  EXPECT_FALSE(ok);
  EXPECT_EQ(c_.txn().stats().snapshot_reads, 0u);
}

// Coordinator crash modelling: halt_at_stage freezes every transaction at a
// protocol stage; the test then builds a replacement coordinator (fresh
// session epoch) and drives adopt_orphans().
class TxnAdoptionTest : public TxnTest {
 protected:
  explicit TxnAdoptionTest(int stage) : TxnTest(stage) {}

  /// Submit one passing checked cross-shard transaction; the halted
  /// coordinator never replies.
  void submit_frozen() {
    c_.router().submit(5, checked_cross("a-key", "va", "z-key", "vz"),
                       [&](const shard::RouteReply&) { replied_ = true; });
    c_.run_for(seconds(2));
    EXPECT_FALSE(replied_);
    // Nothing applied yet: the updates sit buffered in reserved cells.
    EXPECT_EQ(db_at(0, 0, "a-key"), "");
    EXPECT_EQ(db_at(1, 0, "z-key"), "");
    EXPECT_FALSE(txn_residue().empty());
  }

  /// Crash + replace the coordinator, adopt, and require the transaction to
  /// resolve as a commit: updates applied everywhere, no residue.
  void adopt_and_expect_commit() {
    c_.restart_txn_coordinator();
    int adopted = -1;
    c_.txn().adopt_orphans([&](int n) { adopted = n; });
    c_.run_for(seconds(4));
    EXPECT_EQ(adopted, 1);
    EXPECT_TRUE(c_.txn().idle());
    for (int idx = 0; idx < 3; ++idx) {
      EXPECT_EQ(db_at(0, idx, "a-key"), "va") << idx;
      EXPECT_EQ(db_at(1, idx, "z-key"), "vz") << idx;
    }
    EXPECT_TRUE(txn_residue().empty());
    EXPECT_EQ(c_.txn().stats().adopted_confirmed, 1u);
    EXPECT_EQ(c_.txn().stats().adopted_cancelled, 0u);
    EXPECT_EQ(c_.checker()->txn_unresolved(), 0);
    EXPECT_EQ(c_.check_all(), std::nullopt);
  }

  bool replied_ = false;
};

class TxnAdoptionBeforeDecision : public TxnAdoptionTest {
 protected:
  TxnAdoptionBeforeDecision() : TxnAdoptionTest(1) {}
};

TEST_F(TxnAdoptionBeforeDecision, AllPendingsSurviveSoAdoptionCommits) {
  // Crash after every shard voted yes but before the decision record: all
  // involved shards still hold their pendings, so the adopter must commit
  // (no decision against the transaction can exist).
  submit_frozen();
  adopt_and_expect_commit();
}

TEST_F(TxnAdoptionBeforeDecision, AbortedHomePrepareLeavesOrphanThatCancels) {
  // The home shard's check fails, so its prepare (and the piggybacked
  // intent) aborted; shard 1's pending is an orphan the adopter cancels.
  Command cmd;
  cmd.ops.push_back(db::Op{db::OpType::kCheck, "a-flag", "set", 0});
  cmd.ops.push_back(db::Op{db::OpType::kPut, "a-key", "va", 0});
  cmd.ops.push_back(db::Op{db::OpType::kPut, "z-key", "vz", 0});
  c_.router().submit(5, cmd, [&](const shard::RouteReply&) { replied_ = true; });
  c_.run_for(seconds(2));
  EXPECT_FALSE(replied_);  // halted after the votes, before the cancels
  EXPECT_FALSE(txn_residue().empty());

  c_.restart_txn_coordinator();
  int adopted = -1;
  c_.txn().adopt_orphans([&](int n) { adopted = n; });
  c_.run_for(seconds(4));
  EXPECT_EQ(adopted, 1);
  EXPECT_TRUE(c_.txn().idle());
  for (int idx = 0; idx < 3; ++idx) {
    EXPECT_EQ(db_at(0, idx, "a-key"), "") << idx;
    EXPECT_EQ(db_at(1, idx, "z-key"), "") << idx;
  }
  EXPECT_TRUE(txn_residue().empty());
  EXPECT_EQ(c_.txn().stats().adopted_cancelled, 1u);
  EXPECT_EQ(c_.txn().stats().adopted_confirmed, 0u);
  EXPECT_EQ(c_.checker()->txn_unresolved(), 0);
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

class TxnAdoptionAfterDecision : public TxnAdoptionTest {
 protected:
  TxnAdoptionAfterDecision() : TxnAdoptionTest(2) {}
};

TEST_F(TxnAdoptionAfterDecision, DurableDecisionRecordDrivesAdoptionToCommit) {
  // Crash after the decision record went green but before any confirm: the
  // adopter finds `__txnd/` = "C" and must finish the commit.
  submit_frozen();
  adopt_and_expect_commit();
}

TEST_F(TxnAdoptionAfterDecision, AdoptionIsIdempotentAcrossASecondCrash) {
  // The replacement coordinator adopts, commits, and a SECOND replacement
  // adopts again over the clean state: nothing to do, nothing disturbed.
  submit_frozen();
  adopt_and_expect_commit();
  c_.restart_txn_coordinator();
  int adopted = -1;
  c_.txn().adopt_orphans([&](int n) { adopted = n; });
  c_.run_for(seconds(2));
  EXPECT_EQ(adopted, 0);
  for (int idx = 0; idx < 3; ++idx) {
    EXPECT_EQ(db_at(0, idx, "a-key"), "va") << idx;
    EXPECT_EQ(db_at(1, idx, "z-key"), "vz") << idx;
  }
  EXPECT_TRUE(txn_residue().empty());
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

}  // namespace
}  // namespace tordb::txn
