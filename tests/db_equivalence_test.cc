// Randomized equivalence: the flat interned-key Database against a
// reference model built on std::map — the layout the database had before
// keys were interned (DESIGN.md §11). Every externally observable output
// must match op-for-op across long random histories: apply results (reads,
// aborted, fenced), get(), size(), version(), extract_range, peek,
// snapshot *bytes* (state transfer feeds virtual time, so byte equality is
// the bar, not just logical equality) and digest().
#include <gtest/gtest.h>

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "db/database.h"
#include "util/rng.h"

namespace tordb::db {
namespace {

bool reserved(std::string_view key) {
  return key.size() >= 2 && key[0] == '_' && key[1] == '_';
}

bool model_mutates(OpType t) {
  switch (t) {
    case OpType::kPut:
    case OpType::kAdd:
    case OpType::kAppend:
    case OpType::kTimestampPut:
    case OpType::kDelete:
      return true;
    default:
      return false;
  }
}

/// The pre-interning database, re-implemented straight from its std::map
/// form. Deliberately simple and allocation-happy: it is the spec, not the
/// implementation under test.
class ModelDb {
 public:
  ApplyResult apply(const Command& cmd) {
    ApplyResult res;
    for (const Op& op : cmd.ops) {
      if (op.type == OpType::kCheck && get(op.key) != op.value) {
        res.aborted = true;
        return res;
      }
    }
    for (const Op& op : cmd.ops) {
      if (!model_mutates(op.type) || reserved(op.key)) continue;
      for (const Tracked& r : ranges_) {
        if (r.fenced && key_in_range(op.key, r.lo, r.hi)) {
          res.aborted = true;
          res.fenced = true;
          return res;
        }
      }
    }
    for (const Op& op : cmd.ops) {
      switch (op.type) {
        case OpType::kPut:
          data_[op.key].value = op.value;
          break;
        case OpType::kAdd: {
          // Lenient parse, exactly like the implementation's to_num: a
          // non-numeric value (or prefix) contributes 0.
          const std::string v = get(op.key);
          std::int64_t cur = 0;
          std::from_chars(v.data(), v.data() + v.size(), cur);
          data_[op.key].value = std::to_string(cur + op.num);
          break;
        }
        case OpType::kAppend:
          data_[op.key].value += op.value;
          break;
        case OpType::kGet:
          res.reads.push_back(get(op.key));
          break;
        case OpType::kCheck:
          break;
        case OpType::kTimestampPut: {
          MCell& c = data_[op.key];
          if (op.num > c.ts) {
            c.ts = op.num;
            c.value = op.value;
          }
          break;
        }
        case OpType::kDelete:
          data_.erase(op.key);
          break;
        case OpType::kFenceRange:
          carve(op.key, op.value);
          ranges_.push_back(Tracked{op.key, op.value, true});
          break;
        case OpType::kInstallRange: {
          const RangeSnapshot snap =
              RangeSnapshot::decode(Bytes(op.value.begin(), op.value.end()));
          for (auto it = data_.lower_bound(snap.lo); it != data_.end();) {
            if (!snap.hi.empty() && it->first >= snap.hi) break;
            if (reserved(it->first)) {
              ++it;
            } else {
              it = data_.erase(it);
            }
          }
          carve(snap.lo, snap.hi);
          ranges_.push_back(Tracked{snap.lo, snap.hi, false});
          for (const RangeRow& row : snap.rows) data_[row.key] = MCell{row.value, row.ts};
          break;
        }
        case OpType::kUnfenceRange:
          carve(op.key, op.value);
          break;
      }
    }
    ++version_;
    return res;
  }

  std::string get(const std::string& key) const {
    const auto it = data_.find(key);
    return it == data_.end() ? "" : it->second.value;
  }

  std::size_t size() const { return data_.size(); }
  std::int64_t version() const { return version_; }

  RangeSnapshot extract_range(const std::string& lo, const std::string& hi) const {
    RangeSnapshot snap;
    snap.lo = lo;
    snap.hi = hi;
    for (auto it = data_.lower_bound(lo); it != data_.end(); ++it) {
      if (!hi.empty() && it->first >= hi) break;
      if (reserved(it->first)) continue;
      snap.rows.push_back(RangeRow{it->first, it->second.value, it->second.ts});
    }
    return snap;
  }

  Bytes snapshot() const {
    BufWriter w;
    w.i64(version_);
    w.u32(static_cast<std::uint32_t>(data_.size()));
    for (const auto& [key, cell] : data_) {
      w.str(key);
      w.str(cell.value);
      w.i64(cell.ts);
    }
    w.u32(static_cast<std::uint32_t>(ranges_.size()));
    for (const Tracked& r : ranges_) {
      w.str(r.lo);
      w.str(r.hi);
      w.boolean(r.fenced);
    }
    return w.take();
  }

  std::uint64_t digest() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::string_view s) {
      for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
      }
      h ^= 0xff;
      h *= 0x100000001b3ULL;
    };
    for (const auto& [key, cell] : data_) {
      mix(key);
      mix(cell.value);
      h ^= static_cast<std::uint64_t>(cell.ts) * 0x9e3779b97f4a7c15ULL;
    }
    for (const Tracked& r : ranges_) {
      mix(r.lo);
      mix(r.hi);
      h ^= r.fenced ? 0x9e3779b97f4a7c15ULL : 0x517cc1b727220a95ULL;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

 private:
  struct MCell {
    std::string value;
    std::int64_t ts = -1;
  };
  struct Tracked {
    std::string lo;
    std::string hi;
    bool fenced = false;
  };

  void carve(std::string_view lo, std::string_view hi) {
    std::vector<Tracked> next;
    for (Tracked& r : ranges_) {
      const bool overlaps =
          (hi.empty() || r.lo < hi) && (r.hi.empty() || lo < std::string_view(r.hi));
      if (!overlaps) {
        next.push_back(std::move(r));
        continue;
      }
      if (std::string_view(r.lo) < lo) next.push_back(Tracked{r.lo, std::string(lo), r.fenced});
      if (!hi.empty() && (r.hi.empty() || hi < std::string_view(r.hi))) {
        next.push_back(Tracked{std::string(hi), r.hi, r.fenced});
      }
    }
    ranges_ = std::move(next);
  }

  std::map<std::string, MCell> data_;
  std::vector<Tracked> ranges_;
  std::int64_t version_ = 0;
};

void expect_equal(const Database& db, const ModelDb& model, std::uint64_t seed, int step) {
  ASSERT_EQ(db.size(), model.size()) << "seed " << seed << " step " << step;
  ASSERT_EQ(db.version(), model.version()) << "seed " << seed << " step " << step;
  ASSERT_EQ(db.digest(), model.digest()) << "seed " << seed << " step " << step;
  ASSERT_EQ(db.snapshot(), model.snapshot()) << "seed " << seed << " step " << step;
}

TEST(DbEquivalence, RandomHistoriesMatchStdMapModel) {
  // Key pool: a sorted two-digit space (so fence bounds land between keys)
  // plus reserved "__" infrastructure keys that fences must never touch.
  std::vector<std::string> pool;
  for (int i = 0; i < 40; ++i) {
    std::string k = "k";
    k += static_cast<char>('0' + i / 10);
    k += static_cast<char>('0' + i % 10);
    pool.push_back(std::move(k));
  }
  pool.push_back("__session/1");
  pool.push_back("__xs/1/1");

  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    tordb::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    Database db;
    ModelDb model;

    const auto rand_key = [&]() -> const std::string& {
      return pool[rng.next_below(pool.size())];
    };
    const auto rand_bounds = [&]() {
      // lo < hi over the k-space; hi occasionally open ("").
      std::string lo = pool[rng.next_below(40)];
      std::string hi = rng.chance(0.2) ? "" : pool[rng.next_below(40)];
      if (!hi.empty() && hi < lo) std::swap(lo, hi);
      if (hi == lo) hi = "";
      return std::pair<std::string, std::string>(lo, hi);
    };

    for (int step = 0; step < 400; ++step) {
      const std::uint64_t pick = rng.next_below(100);
      Command cmd;
      if (pick < 70) {
        // A small multi-op user command, sometimes guarded by a check.
        const std::size_t ops = 1 + rng.next_below(4);
        for (std::size_t i = 0; i < ops; ++i) {
          const std::string& key = rand_key();
          switch (rng.next_below(7)) {
            case 0:
              cmd.ops.push_back(Op{OpType::kPut, key, "v" + std::to_string(step), 0});
              break;
            case 1:
              cmd.ops.push_back(
                  Op{OpType::kAdd, key, "", static_cast<std::int64_t>(rng.next_below(20)) - 10});
              break;
            case 2:
              cmd.ops.push_back(Op{OpType::kAppend, key, "a", 0});
              break;
            case 3:
              cmd.ops.push_back(Op{OpType::kGet, key, "", 0});
              break;
            case 4:
              // Half the checks are expected to pass (checking the current
              // value), half to fail on a sentinel no key ever holds.
              cmd.ops.push_back(Op{OpType::kCheck, key,
                                   rng.chance(0.5) ? model.get(key) : "!never!", 0});
              break;
            case 5:
              cmd.ops.push_back(Op{OpType::kTimestampPut, key, "t" + std::to_string(step),
                                   static_cast<std::int64_t>(rng.next_below(10))});
              break;
            default:
              cmd.ops.push_back(Op{OpType::kDelete, key, "", 0});
              break;
          }
        }
      } else if (pick < 78) {
        const auto [lo, hi] = rand_bounds();
        cmd = Command::fence_range(lo, hi);
      } else if (pick < 86) {
        // Install a snapshot extracted from the model itself — rows the
        // database must adopt verbatim, clearing its own copy of the range.
        const auto [lo, hi] = rand_bounds();
        cmd = Command::install_range(model.extract_range(lo, hi));
      } else if (pick < 92) {
        const auto [lo, hi] = rand_bounds();
        cmd = Command::unfence_range(lo, hi);
      } else if (pick < 96) {
        // Snapshot/restore round-trip: the restored database must rebuild
        // its interner and flat table to an equivalent state.
        const Bytes snap = db.snapshot();
        db.restore(snap);
        expect_equal(db, model, seed, step);
        continue;
      } else {
        const auto [lo, hi] = rand_bounds();
        const RangeSnapshot a = db.extract_range(lo, hi);
        const RangeSnapshot b = model.extract_range(lo, hi);
        ASSERT_EQ(a.rows.size(), b.rows.size()) << "seed " << seed << " step " << step;
        for (std::size_t i = 0; i < a.rows.size(); ++i) {
          ASSERT_EQ(a.rows[i].key, b.rows[i].key) << "seed " << seed << " step " << step;
          ASSERT_EQ(a.rows[i].value, b.rows[i].value) << "seed " << seed << " step " << step;
          ASSERT_EQ(a.rows[i].ts, b.rows[i].ts) << "seed " << seed << " step " << step;
        }
        continue;
      }

      // peek() is read-only against the PRE-state (an in-command write is
      // not visible to it, unlike apply's reads): evaluate the model's
      // pre-state the same way before applying.
      ApplyResult want_peek;
      for (const Op& op : cmd.ops) {
        if (op.type == OpType::kCheck && model.get(op.key) != op.value) {
          want_peek.aborted = true;
          break;
        }
      }
      if (!want_peek.aborted) {
        for (const Op& op : cmd.ops) {
          if (op.type == OpType::kGet) want_peek.reads.push_back(model.get(op.key));
        }
      }
      const ApplyResult peeked = db.peek(cmd);
      ASSERT_EQ(peeked.aborted, want_peek.aborted) << "seed " << seed << " step " << step;
      ASSERT_EQ(peeked.reads, want_peek.reads) << "seed " << seed << " step " << step;

      const ApplyResult got = db.apply(cmd);
      const ApplyResult want = model.apply(cmd);
      ASSERT_EQ(got.aborted, want.aborted) << "seed " << seed << " step " << step;
      ASSERT_EQ(got.fenced, want.fenced) << "seed " << seed << " step " << step;
      ASSERT_EQ(got.reads, want.reads) << "seed " << seed << " step " << step;
      if (step % 25 == 0) expect_equal(db, model, seed, step);
      // get() spot check on a random key each step.
      const std::string& probe = rand_key();
      ASSERT_EQ(db.get(probe), model.get(probe)) << "seed " << seed << " step " << step;
    }
    expect_equal(db, model, seed, 400);
  }
}

// The split-command apply(query, update) must equal applying the
// concatenation — including cross-program check-first semantics.
TEST(DbEquivalence, SplitApplyEqualsConcatenation) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    tordb::Rng rng(seed);
    Database split_db;
    Database concat_db;
    for (int step = 0; step < 120; ++step) {
      Command query, update;
      const std::string key = "k" + std::to_string(rng.next_below(12));
      if (rng.chance(0.5)) query.ops.push_back(Op{OpType::kGet, key, "", 0});
      if (rng.chance(0.3)) {
        query.ops.push_back(
            Op{OpType::kCheck, key, rng.chance(0.5) ? concat_db.get(key) : "!no!", 0});
      }
      update.ops.push_back(Op{OpType::kPut, key, "v" + std::to_string(step), 0});
      if (rng.chance(0.3)) update.ops.push_back(Op{OpType::kDelete, key, "", 0});

      Command all;
      all.ops = query.ops;
      all.ops.insert(all.ops.end(), update.ops.begin(), update.ops.end());
      const ApplyResult a = split_db.apply(query, update);
      const ApplyResult b = concat_db.apply(all);
      ASSERT_EQ(a.aborted, b.aborted) << "seed " << seed << " step " << step;
      ASSERT_EQ(a.reads, b.reads) << "seed " << seed << " step " << step;
      ASSERT_EQ(split_db.digest(), concat_db.digest()) << "seed " << seed << " step " << step;
    }
    ASSERT_EQ(split_db.snapshot(), concat_db.snapshot());
  }
}

}  // namespace
}  // namespace tordb::db
