// Online shard rebalancing (DESIGN.md §9): directory versioning unit tests
// plus end-to-end fenced key-range moves over live engine groups — happy
// path, a move straddling a source partition, a destination crash
// mid-install, client exactly-once across the epoch bump, and online
// split/merge. Every cluster runs under the online safety checker
// (tests/obs_enable.h), whose range-ownership invariant watches each move.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "shard/directory.h"
#include "workload/sharded_cluster.h"

namespace tordb::shard {
namespace {

using db::Command;
using workload::ShardedCluster;
using workload::ShardedClusterOptions;

TEST(Directory, SplitMergeAndOwnership) {
  Directory d = Directory::ranged({"m"});
  EXPECT_EQ(d.shards(), 2);
  EXPECT_EQ(d.range_count(), 2);
  EXPECT_EQ(d.epoch(), 0);
  EXPECT_EQ(d.shard_of("a"), 0);
  EXPECT_EQ(d.shard_of("z"), 1);

  // Split refines the map without moving keys.
  ASSERT_TRUE(d.split_at("f"));
  EXPECT_EQ(d.epoch(), 1);
  EXPECT_EQ(d.range_count(), 3);
  EXPECT_EQ(d.shard_of("a"), 0);
  EXPECT_EQ(d.shard_of("g"), 0);
  EXPECT_EQ(d.range_index("", "f"), 0);
  EXPECT_EQ(d.range_index("f", "m"), 1);
  EXPECT_EQ(d.range_index("m", ""), 2);
  EXPECT_FALSE(d.split_at("f"));  // already a bound
  EXPECT_FALSE(d.split_at(""));   // the open end is not a key
  EXPECT_EQ(d.epoch(), 1);

  // Ownership cutover is an epoch bump; keys retarget instantly.
  ASSERT_TRUE(d.set_range_owner("f", "m", 1));
  EXPECT_EQ(d.epoch(), 2);
  EXPECT_EQ(d.shard_of("g"), 1);
  EXPECT_EQ(d.shard_of("a"), 0);
  EXPECT_FALSE(d.set_range_owner("f", "m", 1));  // no-op: already owner
  EXPECT_FALSE(d.set_range_owner("f", "q", 0));  // not a range
  EXPECT_FALSE(d.set_range_owner("f", "m", 7));  // no such shard

  // A merge never moves data: owners must match on both sides.
  EXPECT_FALSE(d.merge_at("f"));  // owners 0 | 1
  ASSERT_TRUE(d.set_range_owner("f", "m", 0));
  ASSERT_TRUE(d.merge_at("f"));
  EXPECT_EQ(d.range_count(), 2);
  EXPECT_EQ(d.shard_of("g"), 0);
  EXPECT_FALSE(d.merge_at("q"));  // not a split point

  Directory h = Directory::hashed(4);
  EXPECT_FALSE(h.split_at("x"));
  EXPECT_FALSE(h.merge_at("x"));
  EXPECT_EQ(h.range_count(), 0);
  EXPECT_EQ(h.epoch(), 0);
}

ShardedClusterOptions ranged_options(std::uint64_t seed) {
  ShardedClusterOptions o;
  o.shards = 2;
  o.replicas_per_shard = 3;
  o.seed = seed;
  o.range_splits = {"m"};  // shard 0: [-inf, "m"), shard 1: ["m", +inf)
  o.session.max_attempts_per_request = 100000;
  return o;
}

/// Drive the router with `n` adds of `key` spread `gap` apart, collecting
/// commit replies into `committed`.
void add_loop(ShardedCluster& c, const std::string& key, int n, SimDuration gap,
              std::uint64_t* committed) {
  for (int i = 0; i < n; ++i) {
    c.router().submit(7, Command::add(key, 1), [committed](const RouteReply& r) {
      if (r.committed) ++*committed;
    });
    c.run_for(gap);
  }
}

void drain(ShardedCluster& c, std::uint64_t seed) {
  for (int rounds = 0; !(c.router().idle() && c.rebalancer().idle()) && rounds < 120;
       ++rounds) {
    c.run_for(seconds(1));
  }
  ASSERT_TRUE(c.router().idle()) << "router never drained, seed " << seed;
  ASSERT_TRUE(c.rebalancer().idle()) << "rebalancer never drained, seed " << seed;
}

TEST(ShardRebalance, MoveHappyPath) {
  ShardedCluster c(ranged_options(11));
  c.run_for(seconds(2));

  // Seed rows in the range that will move.
  std::uint64_t committed = 0;
  for (const char* key : {"a", "b", "c"}) {
    add_loop(c, key, 2, millis(50), &committed);
  }
  drain(c, 11);
  ASSERT_EQ(committed, 6u);

  MoveReport report;
  ASSERT_TRUE(c.move_range("", "m", 1, [&report](const MoveReport& r) { report = r; }));
  EXPECT_FALSE(c.move_range("", "m", 1));  // same range is mid-move: rejected
  drain(c, 11);

  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.from, 0);
  EXPECT_EQ(report.to, 1);
  EXPECT_GE(report.rows, 3);  // a, b, c (session guards are pinned, not moved)
  EXPECT_GT(report.bytes, 0);
  EXPECT_EQ(c.directory_epoch(), 1);
  EXPECT_EQ(c.directory().shard_of("a"), 1);

  // Every key of the moved range is readable at the destination, value
  // intact, and new writes land there.
  c.run_for(seconds(15));
  ASSERT_TRUE(c.converged(1));
  for (const char* key : {"a", "b", "c"}) {
    EXPECT_EQ(c.node(1, 0).engine().database().get(key), "2") << key;
  }
  add_loop(c, "a", 3, millis(50), &committed);
  drain(c, 11);
  c.run_for(seconds(15));
  EXPECT_EQ(committed, 9u);
  EXPECT_EQ(c.node(1, 0).engine().database().get("a"), "5");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(ShardRebalance, ClientExactlyOnceAcrossEpochBump) {
  ShardedClusterOptions o = ranged_options(12);
  o.rebalance.transfer_base = millis(400);  // widen the fence->cutover window
  ShardedCluster c(o);
  c.run_for(seconds(2));

  std::uint64_t committed = 0;
  add_loop(c, "hot", 5, millis(20), &committed);

  // Move the hot range while the same client keeps writing: commands that
  // land in the fence window bounce and re-route to the new owner.
  ASSERT_TRUE(c.move_range("", "m", 1));
  add_loop(c, "hot", 40, millis(25), &committed);
  drain(c, 12);
  c.run_for(seconds(15));

  EXPECT_EQ(committed, 45u);
  EXPECT_GT(c.router().stats().fenced_bounces, 0u);
  ASSERT_TRUE(c.converged(1));
  // Exactly-once across the bump: the counter equals the committed adds.
  EXPECT_EQ(c.node(1, 0).engine().database().get("hot"), "45");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(ShardRebalance, MoveDuringSourcePartition) {
  ShardedCluster c(ranged_options(13));
  c.run_for(seconds(2));

  std::uint64_t committed = 0;
  add_loop(c, "a", 4, millis(50), &committed);
  drain(c, 13);

  // Partition the source: majority {0,1} | {2}. The fence still commits in
  // the majority component; the snapshot is extracted from a fenced member.
  c.partition_shard(0, {{0, 1}, {2}});
  c.run_for(seconds(2));
  ASSERT_TRUE(c.move_range("", "m", 1));
  c.run_for(seconds(5));
  c.heal();
  drain(c, 13);
  c.run_for(seconds(15));

  EXPECT_EQ(c.directory().shard_of("a"), 1);
  ASSERT_TRUE(c.converged(1));
  EXPECT_EQ(c.node(1, 0).engine().database().get("a"), "4");
  add_loop(c, "a", 2, millis(50), &committed);
  drain(c, 13);
  c.run_for(seconds(15));
  EXPECT_EQ(committed, 6u);
  EXPECT_EQ(c.node(1, 0).engine().database().get("a"), "6");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(ShardRebalance, DestinationCrashMidInstall) {
  ShardedClusterOptions o = ranged_options(14);
  o.rebalance.transfer_base = millis(600);  // crash lands inside the transfer
  ShardedCluster c(o);
  c.run_for(seconds(2));

  std::uint64_t committed = 0;
  add_loop(c, "a", 3, millis(50), &committed);
  drain(c, 14);

  ASSERT_TRUE(c.move_range("", "m", 1));
  c.run_for(millis(300));  // fence is green; the snapshot is in flight
  c.crash(1, 0);           // the install session's first target dies
  c.run_for(seconds(3));
  c.recover(1, 0);
  drain(c, 14);
  c.run_for(seconds(15));

  EXPECT_EQ(c.directory().shard_of("a"), 1);
  ASSERT_TRUE(c.converged(1));
  EXPECT_EQ(c.node(1, 0).engine().database().get("a"), "3");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(ShardRebalance, SplitAndMergeOnline) {
  ShardedCluster c(ranged_options(15));
  c.run_for(seconds(2));

  std::uint64_t committed = 0;
  add_loop(c, "a", 2, millis(50), &committed);
  add_loop(c, "f", 2, millis(50), &committed);
  drain(c, 15);

  // Split [ -inf, "m") at "d": both halves keep shard 0; no data moves.
  ASSERT_TRUE(c.split_at("d"));
  EXPECT_EQ(c.directory_epoch(), 1);
  EXPECT_EQ(c.directory().shard_of("a"), 0);
  EXPECT_EQ(c.directory().shard_of("f"), 0);

  // Move just the ["d", "m") half: "f" retargets, "a" stays.
  ASSERT_TRUE(c.move_range("d", "m", 1));
  drain(c, 15);
  c.run_for(seconds(15));
  EXPECT_EQ(c.directory().shard_of("a"), 0);
  EXPECT_EQ(c.directory().shard_of("f"), 1);
  ASSERT_TRUE(c.converged(1));
  EXPECT_EQ(c.node(1, 0).engine().database().get("f"), "2");

  // Merge is rejected across owners; move back, then it collapses.
  EXPECT_FALSE(c.merge_at("d"));
  ASSERT_TRUE(c.move_range("d", "m", 0));
  drain(c, 15);
  ASSERT_TRUE(c.merge_at("d"));
  EXPECT_EQ(c.directory().range_count(), 2);
  EXPECT_EQ(c.directory().shard_of("f"), 0);

  add_loop(c, "f", 2, millis(50), &committed);
  drain(c, 15);
  c.run_for(seconds(15));
  EXPECT_EQ(committed, 6u);
  ASSERT_TRUE(c.converged(0));
  EXPECT_EQ(c.node(0, 0).engine().database().get("f"), "4");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(ShardRebalance, MoveBackDoesNotResurrectDeletes) {
  ShardedCluster c(ranged_options(16));
  c.run_for(seconds(2));

  std::uint64_t committed = 0;
  add_loop(c, "a", 2, millis(50), &committed);
  add_loop(c, "b", 2, millis(50), &committed);
  drain(c, 16);
  ASSERT_EQ(committed, 4u);

  // Move ["", "m") to shard 1, delete "a" under the new owner, move back.
  ASSERT_TRUE(c.move_range("", "m", 1));
  drain(c, 16);
  bool deleted = false;
  c.router().submit(7, Command::del("a"),
                    [&deleted](const RouteReply& r) { deleted = r.committed; });
  drain(c, 16);
  ASSERT_TRUE(deleted);
  ASSERT_TRUE(c.move_range("", "m", 0));
  drain(c, 16);
  c.run_for(seconds(15));

  // The install replaced shard 0's stale copy: the key deleted under the
  // interim owner stays deleted, the survivor keeps its value.
  EXPECT_EQ(c.directory().shard_of("a"), 0);
  ASSERT_TRUE(c.converged(0));
  EXPECT_EQ(c.node(0, 0).engine().database().get("a"), "");
  EXPECT_EQ(c.node(0, 0).engine().database().get("b"), "2");
  add_loop(c, "a", 1, millis(50), &committed);
  drain(c, 16);
  c.run_for(seconds(15));
  EXPECT_EQ(c.node(0, 0).engine().database().get("a"), "1");  // fresh counter
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(ShardRebalance, SplitAfterMoveThenMoveSubRangeBack) {
  ShardedCluster c(ranged_options(17));
  c.run_for(seconds(2));

  std::uint64_t committed = 0;
  add_loop(c, "a", 2, millis(50), &committed);
  add_loop(c, "f", 2, millis(50), &committed);
  drain(c, 17);

  // Move the whole range away, split it under its new owner, then bring
  // just ["", "d") back. Shard 0's stale fenced ["", "m") entry must not
  // shadow the narrower install — writes to "a" would abort forever.
  ASSERT_TRUE(c.move_range("", "m", 1));
  drain(c, 17);
  ASSERT_TRUE(c.split_at("d"));
  ASSERT_TRUE(c.move_range("", "d", 0));
  drain(c, 17);
  c.run_for(seconds(15));

  EXPECT_EQ(c.directory().shard_of("a"), 0);
  EXPECT_EQ(c.directory().shard_of("f"), 1);
  add_loop(c, "a", 3, millis(50), &committed);
  add_loop(c, "f", 3, millis(50), &committed);
  drain(c, 17);
  c.run_for(seconds(15));
  EXPECT_EQ(committed, 10u);
  ASSERT_TRUE(c.converged(0));
  ASSERT_TRUE(c.converged(1));
  EXPECT_EQ(c.node(0, 0).engine().database().get("a"), "5");
  EXPECT_EQ(c.node(1, 0).engine().database().get("f"), "5");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(ShardRebalance, AbandonedMoveUnfencesSource) {
  ShardedClusterOptions o = ranged_options(18);
  o.session.max_attempts_per_request = 4;  // the install gives up quickly
  ShardedCluster c(o);
  c.run_for(seconds(2));

  std::uint64_t committed = 0;
  add_loop(c, "a", 2, millis(50), &committed);
  drain(c, 18);

  // Kill the whole destination group: the fence commits at shard 0, the
  // install exhausts its budget against shard 1, and the move rolls back
  // by unfencing the source instead of parking the range unwritable.
  for (int i = 0; i < 3; ++i) c.crash(1, i);
  MoveReport report;
  report.ok = true;
  ASSERT_TRUE(c.move_range("", "m", 1, [&report](const MoveReport& r) { report = r; }));
  drain(c, 18);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(c.rebalancer().stats().moves_failed, 1u);
  EXPECT_EQ(c.rebalancer().stats().moves_rejected, 0u);

  // The directory never flipped; after the rollback the source accepts
  // writes to the range again.
  EXPECT_EQ(c.directory().shard_of("a"), 0);
  EXPECT_EQ(c.directory_epoch(), 0);
  add_loop(c, "a", 3, millis(50), &committed);
  drain(c, 18);
  c.run_for(seconds(15));
  EXPECT_EQ(committed, 5u);
  ASSERT_TRUE(c.converged(0));
  EXPECT_EQ(c.node(0, 0).engine().database().get("a"), "5");

  for (int i = 0; i < 3; ++i) c.recover(1, i);
  c.run_for(seconds(15));
  EXPECT_EQ(c.check_all(), std::nullopt);
}

}  // namespace
}  // namespace tordb::shard
