// Targeted coverage of the flush (membership) protocol internals through
// observable behaviour: coordinator contention, retry paths, retransmission
// content, and configuration-id monotonicity across adversarial timings.
#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "gc_harness.h"

namespace tordb::gc {
namespace {

using tordb::gc::testing::GcCluster;
using tordb::gc::testing::parse_payload;

TEST(GcFlush, CoordinatorIsLowestReachableId) {
  GcCluster c(4);
  c.run_for(millis(500));
  // In {1,2,3} (node 0 isolated), node 1 coordinates and sequences.
  c.net().set_components({{0}, {1, 2, 3}});
  c.run_for(millis(500));
  ASSERT_TRUE(c.converged({1, 2, 3}));
  EXPECT_EQ(c.gc(1).config().id.coordinator, 1);
  c.multicast(3, 1);
  c.run_for(millis(100));
  EXPECT_GT(c.gc(1).stats().messages_ordered, 0u);
}

TEST(GcFlush, ConfigCountersMonotoneThroughChaos) {
  GcCluster c(5, 77);
  c.run_for(millis(300));
  for (int i = 0; i < 8; ++i) {
    c.net().set_components(i % 2 ? std::vector<std::vector<NodeId>>{{0, 1, 2}, {3, 4}}
                                 : std::vector<std::vector<NodeId>>{{0, 4}, {1, 2, 3}});
    c.run_for(millis(60));
  }
  c.net().heal();
  c.run_for(seconds(1));
  for (NodeId n = 0; n < 5; ++n) {
    const auto& regs = c.record(n).regulars;
    for (std::size_t i = 1; i < regs.size(); ++i) {
      EXPECT_GT(regs[i].id.counter, regs[i - 1].id.counter)
          << "node " << n << " config " << i;
    }
  }
  c.check_all_invariants();
}

TEST(GcFlush, RetransmissionFillsStragglerExactly) {
  // One member of a component misses traffic only in the sense of being
  // behind (slow acks); all members still deliver identical sets after the
  // next flush — validated via virtual synchrony over a forced view change.
  GcCluster c(3);
  c.run_for(millis(500));
  for (std::int64_t k = 1; k <= 25; ++k) c.multicast(0, k);
  // Trigger a flush immediately: in-flight messages must be reconciled.
  c.net().set_components({{0, 1, 2}});  // no-op topology "change"
  c.run_for(millis(2));
  c.net().set_components({{0, 1}, {2}});
  c.run_for(seconds(1));
  c.check_all_invariants();
  // Both continuing members hold identical delivery sequences.
  const auto& a = c.record(0).deliveries;
  const auto& b = c.record(1).deliveries;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].payload, b[i].payload);
}

TEST(GcFlush, MergeOfThreeSingletons) {
  GcCluster c(3);
  c.net().set_components({{0}, {1}, {2}});
  c.run_for(millis(400));
  EXPECT_TRUE(c.converged({0}));
  EXPECT_TRUE(c.converged({1}));
  EXPECT_TRUE(c.converged({2}));
  // Each singleton orders its own traffic meanwhile.
  c.multicast(0, 1);
  c.multicast(1, 1);
  c.multicast(2, 1);
  c.run_for(millis(200));
  c.net().heal();
  c.run_for(seconds(1));
  EXPECT_TRUE(c.converged({0, 1, 2}));
  c.check_all_invariants();
}

TEST(GcFlush, AsymmetricDetectionStillConverges) {
  // Stagger the changes so reachability notifications interleave: one node
  // flips between components across two quick changes.
  GcCluster c(5, 13);
  c.run_for(millis(400));
  c.net().set_components({{0, 1, 2, 3}, {4}});
  c.run_for(micros(1200));  // detection window is 1ms: mid-flight
  c.net().set_components({{0, 1}, {2, 3, 4}});
  c.run_for(micros(1200));
  c.net().set_components({{0, 1, 2}, {3, 4}});
  c.run_for(seconds(1));
  EXPECT_TRUE(c.converged({0, 1, 2}));
  EXPECT_TRUE(c.converged({3, 4}));
  c.check_all_invariants();
}

TEST(GcFlush, TrafficDuringRepeatedFlushesNeverReorders) {
  GcCluster c(4, 31);
  c.run_for(millis(400));
  std::int64_t k = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 5; ++i) c.multicast(round % 4, ++k);
    c.net().set_components(round % 2 ? std::vector<std::vector<NodeId>>{{0, 1, 2, 3}}
                                     : std::vector<std::vector<NodeId>>{{0, 1}, {2, 3}});
    c.run_for(millis(35));
  }
  c.net().heal();
  c.run_for(seconds(1));
  c.check_all_invariants();  // FIFO checker forbids reordering
}

TEST(GcFlush, GatherStatsAccount) {
  GcCluster c(3);
  c.run_for(millis(500));
  const auto gathers = c.gc(0).stats().gathers_started;
  EXPECT_GE(gathers, 1u);  // the startup merge
  c.net().set_components({{0, 1}, {2}});
  c.run_for(millis(500));
  EXPECT_GT(c.gc(0).stats().gathers_started, gathers);
  EXPECT_GE(c.gc(0).stats().regular_configs, 2u);
  EXPECT_GE(c.gc(0).stats().transitional_configs, 1u);
}

}  // namespace
}  // namespace tordb::gc
