// Spread-style facade: join/leave, service types, poll-receive, membership
// events in Spread's event model.
#include <gtest/gtest.h>

#include <memory>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "gc/spread_compat.h"
#include "sim/simulator.h"

namespace tordb::gc {
namespace {

class SpreadCompatTest : public ::testing::Test {
 protected:
  SpreadCompatTest() : sim_(5), net_(sim_) {
    for (NodeId n = 0; n < 3; ++n) {
      net_.add_node(n);
      mboxes_.push_back(std::make_unique<SpreadMailbox>(net_, n));
    }
  }

  void join_all() {
    for (auto& m : mboxes_) m->join();
    sim_.run_for(seconds(1));
  }

  std::vector<SpEvent> drain(NodeId n) {
    std::vector<SpEvent> events;
    while (auto ev = mboxes_[static_cast<std::size_t>(n)]->receive()) {
      events.push_back(std::move(*ev));
    }
    return events;
  }

  Simulator sim_;
  Network net_;
  std::vector<std::unique_ptr<SpreadMailbox>> mboxes_;
};

TEST_F(SpreadCompatTest, JoinDeliversMembershipEvents) {
  join_all();
  auto events = drain(0);
  ASSERT_FALSE(events.empty());
  // The last regular membership covers all three members.
  const SpEvent* last_reg = nullptr;
  for (const auto& ev : events) {
    if (ev.type == SpEventType::kRegularMembership) last_reg = &ev;
  }
  ASSERT_NE(last_reg, nullptr);
  EXPECT_EQ(last_reg->members, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(mboxes_[0]->current_members(), (std::vector<NodeId>{0, 1, 2}));
}

TEST_F(SpreadCompatTest, SafeMulticastDeliveredEverywhereInOrder) {
  join_all();
  for (NodeId n = 0; n < 3; ++n) drain(n);
  mboxes_[1]->multicast(Bytes{1}, SpService::kSafe);
  mboxes_[1]->multicast(Bytes{2}, SpService::kSafe);
  sim_.run_for(millis(200));
  for (NodeId n = 0; n < 3; ++n) {
    auto events = drain(n);
    ASSERT_EQ(events.size(), 2u) << "node " << n;
    EXPECT_EQ(events[0].payload, Bytes{1});
    EXPECT_EQ(events[1].payload, Bytes{2});
    EXPECT_TRUE(events[0].safe_delivered);
    EXPECT_EQ(events[0].sender, 1);
  }
}

TEST_F(SpreadCompatTest, AgreedServiceMarksNonSafe) {
  join_all();
  for (NodeId n = 0; n < 3; ++n) drain(n);
  mboxes_[0]->multicast(Bytes{7}, SpService::kAgreed);
  sim_.run_for(millis(100));
  auto events = drain(2);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].safe_delivered);
}

TEST_F(SpreadCompatTest, PartitionProducesTransitionThenRegular) {
  join_all();
  for (NodeId n = 0; n < 3; ++n) drain(n);
  net_.set_components({{0, 1}, {2}});
  sim_.run_for(seconds(1));
  auto events = drain(0);
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].type, SpEventType::kTransitionalMembership);
  EXPECT_EQ(events[1].type, SpEventType::kRegularMembership);
  EXPECT_EQ(events[1].members, (std::vector<NodeId>{0, 1}));
}

TEST_F(SpreadCompatTest, LeaveShrinksMembership) {
  join_all();
  mboxes_[2]->leave();
  sim_.run_for(seconds(1));
  EXPECT_EQ(mboxes_[0]->current_members(), (std::vector<NodeId>{0, 1}));
  EXPECT_FALSE(mboxes_[2]->joined());
}

TEST_F(SpreadCompatTest, RejoinAfterLeave) {
  join_all();
  mboxes_[2]->leave();
  sim_.run_for(seconds(1));
  mboxes_[2]->join();
  sim_.run_for(seconds(1));
  EXPECT_EQ(mboxes_[0]->current_members(), (std::vector<NodeId>{0, 1, 2}));
  // Messages flow to the re-joined member.
  for (NodeId n = 0; n < 3; ++n) drain(n);
  mboxes_[0]->multicast(Bytes{9}, SpService::kSafe);
  sim_.run_for(millis(200));
  auto events = drain(2);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].payload, Bytes{9});
}

TEST_F(SpreadCompatTest, ReceiveOnEmptyMailboxReturnsNothing) {
  EXPECT_EQ(mboxes_[0]->receive(), std::nullopt);
  EXPECT_FALSE(mboxes_[0]->has_pending());
}

}  // namespace
}  // namespace tordb::gc
